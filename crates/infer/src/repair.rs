//! Phase 2: counterexample-guided annotation repair.
//!
//! The repair loop applies the current proposal set to the source, checks
//! the result through the verification engine (riding the shared verdict
//! cache and warm scope contexts), and translates every refuted
//! modifies-obligation back to the minimal annotation edit: locate the
//! offending command via the obligation label's span, recompute its
//! license demand with the static machinery, and either extend a
//! `modifies` list or add a group membership. Proposals grow monotonically
//! over a finite entry universe (designator paths are length-bounded, the
//! attribute vocabulary is fixed), so the loop terminates: each round
//! either adds a proposal or reaches fixpoint, and the round count is
//! bounded by [`InferOptions::max_rounds`] as a belt-and-braces guard.

use std::collections::{BTreeMap, BTreeSet};

use datagroups::{CheckOptions, ObligationKind, ObligationLabel, Verdict};
use oolong_engine::{BatchReport, Engine};
use oolong_sema::Scope;
use oolong_syntax::parse_program;

use crate::analysis::{
    canonicalize, collect_events, declared_read_entries, event_demands, final_frames, read_demands,
    static_frames, static_read_frames, Event, FrameEntry, GroupGraph, ReadEvent, Seg,
};
use crate::edits::{apply_edits, render_edits, Edit, Proposal, ProposalKind, Provenance};

/// Options for an inference run.
#[derive(Debug, Clone)]
pub struct InferOptions {
    /// Checker options for the repair-loop engine rounds.
    pub check: CheckOptions,
    /// Maximum number of engine check rounds.
    pub max_rounds: usize,
    /// Restrict proposals to this procedure.
    pub proc: Option<String>,
    /// Propose a `reads` clause for procedures that declare none. Off by
    /// default: an absent clause imposes no obligations, so inventing one
    /// strengthens the spec rather than repairing it. Declared-but-
    /// insufficient clauses are always completed, regardless of this flag.
    pub infer_reads: bool,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            check: CheckOptions::default(),
            max_rounds: 8,
            proc: None,
            infer_reads: false,
        }
    }
}

/// The result of an inference run.
pub struct InferOutcome {
    /// Unit name the run was invoked on.
    pub unit: String,
    /// Accepted proposals, in application order.
    pub proposals: Vec<Proposal>,
    /// Rendered edit per proposal (anchored in the base source).
    pub edits: Vec<Option<Edit>>,
    /// Engine check rounds performed.
    pub rounds: usize,
    /// Whether the repair loop converged (no repairable refutation left)
    /// within the round bound.
    pub fixpoint: bool,
    /// Whether the final annotated unit verifies completely.
    pub verified: bool,
    /// Procedures with unverified obligations in the final round.
    pub unverified_procs: Vec<String>,
    /// Inexpressible demands and unrepairable refutations.
    pub notes: Vec<String>,
    /// The base source with every proposal applied.
    pub edited_source: String,
    /// Whether group-membership proposals were retracted in favour of
    /// modifies extensions after breaking an unrelated proof.
    pub membership_fallback: bool,
}

impl InferOutcome {
    /// Parameter names of `proc` in the final program (for rendering).
    pub fn params_of(&self, proc: &str) -> Vec<String> {
        parse_program(&self.edited_source)
            .ok()
            .and_then(|p| {
                crate::analysis::all_proc_decls(&p)
                    .into_iter()
                    .find(|d| d.name.text == proc)
                    .map(|d| d.params.iter().map(|i| i.text.clone()).collect())
            })
            .unwrap_or_default()
    }
}

/// Chooses the proposal kind for a demanded entry: a group membership when
/// the originally-declared frame already licenses a group on the same
/// parameter (the paper's "forgot the `in` clause" shape — the minimal
/// edit restores the membership), otherwise a modifies extension.
fn choose_kind(
    graph: &GroupGraph,
    base_declared: &BTreeSet<FrameEntry>,
    entry: &FrameEntry,
    allow_membership: bool,
) -> ProposalKind {
    if allow_membership && entry.path.len() == 1 && graph.is_field(&entry.path[0]) {
        // A declared group that already contains the field licenses the
        // writes but cannot entail a call-inherited entry's exclusion
        // obligation — re-proposing the membership would be a no-op, so
        // only groups the field is *not* yet below qualify.
        let mut groups: Vec<&String> = base_declared
            .iter()
            .filter(|d| {
                d.param == entry.param
                    && d.path.len() == 1
                    && graph.is_group(&d.path[0])
                    && !graph.covers(&d.path[0], &entry.path)
            })
            .map(|d| &d.path[0])
            .collect();
        groups.sort();
        if let Some(g) = groups.first() {
            return ProposalKind::Membership {
                field: entry.path[0].clone(),
                group: (*g).clone(),
            };
        }
    }
    ProposalKind::Extend(entry.clone())
}

/// Per-round working state shared between the static phase and repair.
struct Attempt {
    proposals: Vec<Proposal>,
    notes: BTreeSet<String>,
    rounds: usize,
    fixpoint: bool,
    verified: bool,
    unverified_procs: BTreeSet<String>,
    edited_source: String,
}

fn in_scope(opts: &InferOptions, proc: &str) -> bool {
    opts.proc.as_deref().map(|p| p == proc).unwrap_or(true)
}

/// Keeps `ReadsExtend` proposals after every other kind (stable within each
/// class). Edits at the same anchor apply in listed order, and for a
/// declaration with neither clause the `modifies` and `reads` insertion
/// points coincide — this ordering keeps `modifies` before `reads`, as the
/// grammar requires.
fn order_proposals(proposals: &mut [Proposal]) {
    proposals.sort_by_key(|p| matches!(p.kind, ProposalKind::ReadsExtend(_)));
}

/// Runs one full inference attempt (static phase + repair rounds).
fn run_attempt(
    engine: &Engine,
    unit: &str,
    source: &str,
    opts: &InferOptions,
    allow_membership: bool,
) -> Result<Attempt, String> {
    let program = parse_program(source).map_err(|ds| format!("parse error: {ds}"))?;
    let scope = Scope::analyze(&program).map_err(|ds| format!("scope error: {ds}"))?;
    let graph = GroupGraph::from_scope(&scope);

    // Base declared frames, for the membership heuristic.
    let base_declared: BTreeMap<String, BTreeSet<FrameEntry>> = scope
        .procs()
        .map(|(id, info)| {
            (
                info.name.clone(),
                crate::analysis::declared_entries(&scope, id),
            )
        })
        .collect();

    let mut state = Attempt {
        proposals: Vec::new(),
        notes: BTreeSet::new(),
        rounds: 0,
        fixpoint: false,
        verified: false,
        unverified_procs: BTreeSet::new(),
        edited_source: source.to_string(),
    };

    // Phase 1: static proposals.
    let analysis = static_frames(&scope, &graph);
    for n in &analysis.notes {
        state.notes.insert(n.clone());
    }
    let mut seen_memberships: BTreeSet<(String, String)> = BTreeSet::new();
    let finals = final_frames(&scope, &graph, &analysis);
    for (proc_name, canonical) in &finals {
        if !in_scope(opts, proc_name) || canonical.is_empty() {
            continue;
        }
        let declared = base_declared.get(proc_name).cloned().unwrap_or_default();
        for entry in canonical {
            let kind = choose_kind(&graph, &declared, entry, allow_membership);
            if let ProposalKind::Membership { field, group } = &kind {
                if !seen_memberships.insert((field.clone(), group.clone())) {
                    continue;
                }
            }
            state.proposals.push(Proposal {
                proc: proc_name.clone(),
                kind,
                provenance: Provenance::Static,
                round: 0,
            });
        }
    }

    // Phase 1b: static may-read proposals. A declared clause is always
    // completed to cover the body's direct dereferences; an absent clause
    // is only invented under `infer_reads`.
    let read_analysis = static_read_frames(&scope, &graph);
    for n in &read_analysis.notes {
        state.notes.insert(n.clone());
    }
    for (proc_name, pr) in &read_analysis.procs {
        if !in_scope(opts, proc_name) {
            continue;
        }
        let declared = match &pr.declared {
            Some(d) => d.clone(),
            None if opts.infer_reads && !pr.demanded.is_empty() => BTreeSet::new(),
            None => continue,
        };
        for entry in canonicalize(&graph, &declared, &pr.demanded, &BTreeSet::new()) {
            state.proposals.push(Proposal {
                proc: proc_name.clone(),
                kind: ProposalKind::ReadsExtend(entry),
                provenance: Provenance::Static,
                round: 0,
            });
        }
    }
    order_proposals(&mut state.proposals);

    // Phase 2: check-and-repair rounds.
    while state.rounds < opts.max_rounds {
        state.rounds += 1;
        let edits: Vec<Edit> = render_edits(&program, source, &state.proposals)
            .into_iter()
            .flatten()
            .collect();
        let edited = apply_edits(source, &edits);
        let report = engine.check_source(unit, &edited);
        if !report.unit_errors.is_empty() {
            let msgs: Vec<String> = report
                .unit_errors
                .iter()
                .map(|e| e.message.clone())
                .collect();
            return Err(format!(
                "proposed annotations produced an ill-formed unit: {}",
                msgs.join("; ")
            ));
        }
        state.edited_source = edited;
        state.unverified_procs = report
            .obligations
            .iter()
            .filter(|o| !o.verdict.is_verified())
            .map(|o| o.proc_name.clone())
            .collect();
        if report.all_verified() {
            state.fixpoint = true;
            state.verified = true;
            break;
        }
        let new = repair_round(
            &state.edited_source,
            &report,
            &base_declared,
            opts,
            allow_membership,
            state.rounds,
            &mut state.notes,
        )?;
        let mut progressed = false;
        for p in new {
            if let ProposalKind::Membership { field, group } = &p.kind {
                if !seen_memberships.insert((field.clone(), group.clone())) {
                    continue;
                }
            }
            if state.proposals.contains(&p) {
                continue;
            }
            state.proposals.push(p);
            progressed = true;
        }
        order_proposals(&mut state.proposals);
        if !progressed {
            // No repairable refutation produced a new proposal: the loop is
            // at fixpoint with the remaining refutations unrepairable.
            state.fixpoint = true;
            state.verified = false;
            break;
        }
    }
    Ok(state)
}

/// Matches a refuted obligation label to the body events it implicates.
///
/// Spans are authoritative when they land inside an event: that is the
/// common case. But the verdict cache is keyed by VC fingerprint alone,
/// so a fingerprint-identical obligation first proved under a *different*
/// unit returns a cached refutation whose label span points into that
/// unit's source. The verdict itself is still valid — only the span is
/// unit-relative — so fall back to matching by the label's detail text:
/// the callee name for call licenses, the field name for field writes,
/// and the slot shape for slot writes.
fn matching_events<'a>(label: &ObligationLabel, events: &'a [Event]) -> Vec<&'a Event> {
    let by_span: Vec<&Event> = events
        .iter()
        .filter(|e| {
            let s = e.span();
            s.start <= label.span.start && label.span.end <= s.end
        })
        .collect();
    if !by_span.is_empty() {
        return by_span;
    }
    let named = label.detail.split('`').nth(1);
    if label.detail.starts_with("call to ") {
        if let Some(name) = named {
            return events
                .iter()
                .filter(|e| matches!(e, Event::Call { callee, .. } if callee == name))
                .collect();
        }
    }
    if label.detail.contains("field") {
        if let Some(name) = named {
            return events
                .iter()
                .filter(|e| {
                    matches!(e, Event::Write { segs, .. }
                        if segs.last() == Some(&Seg::Attr(name.to_string())))
                })
                .collect();
        }
    }
    if label.detail.contains("slot") {
        return events
            .iter()
            .filter(|e| matches!(e, Event::Write { segs, .. } if segs.last() == Some(&Seg::Slot)))
            .collect();
    }
    Vec::new()
}

/// Matches a refuted read license to the dereferences it implicates, with
/// the same span-then-detail strategy as [`matching_events`]: the label's
/// span is the dereference expression itself, and the cached-cross-unit
/// fallback keys on the attribute named in the pretty-printed designator.
fn matching_reads<'a>(label: &ObligationLabel, reads: &'a [ReadEvent]) -> Vec<&'a ReadEvent> {
    let by_span: Vec<&ReadEvent> = reads
        .iter()
        .filter(|r| r.span.start <= label.span.start && label.span.end <= r.span.end)
        .collect();
    if !by_span.is_empty() {
        return by_span;
    }
    let Some(desc) = label.detail.split('`').nth(1) else {
        return Vec::new();
    };
    let attr = desc.rsplit('.').next().unwrap_or(desc);
    if attr.contains('[') {
        return reads
            .iter()
            .filter(|r| r.segs.last() == Some(&Seg::Slot))
            .collect();
    }
    reads
        .iter()
        .filter(|r| r.segs.last() == Some(&Seg::Attr(attr.to_string())))
        .collect()
}

/// Translates the refuted obligations of one round into new proposals.
fn repair_round(
    edited_source: &str,
    report: &BatchReport,
    base_declared: &BTreeMap<String, BTreeSet<FrameEntry>>,
    opts: &InferOptions,
    allow_membership: bool,
    round: usize,
    notes: &mut BTreeSet<String>,
) -> Result<Vec<Proposal>, String> {
    let program =
        parse_program(edited_source).map_err(|ds| format!("parse error in edited unit: {ds}"))?;
    let scope =
        Scope::analyze(&program).map_err(|ds| format!("scope error in edited unit: {ds}"))?;
    let graph = GroupGraph::from_scope(&scope);
    // Effective (declared-in-edited) frames for callee lookup.
    let frames: BTreeMap<String, BTreeSet<FrameEntry>> = scope
        .procs()
        .map(|(id, info)| {
            (
                info.name.clone(),
                crate::analysis::declared_entries(&scope, id),
            )
        })
        .collect();
    let mut proposals = Vec::new();
    for ob in &report.obligations {
        let Verdict::NotVerified(_, refutation) = &ob.verdict else {
            match &ob.verdict {
                Verdict::Verified(_) => {}
                Verdict::RestrictionViolation(_) => {
                    notes.insert(format!(
                        "{}: pivot-uniqueness restriction violation is not repairable by \
                         annotations",
                        ob.proc_name
                    ));
                }
                Verdict::Unknown(_) => {
                    notes.insert(format!(
                        "{}: obligation exhausted the prover budget",
                        ob.proc_name
                    ));
                }
                Verdict::TranslationError(d) => {
                    notes.insert(format!("{}: translation error: {d}", ob.proc_name));
                }
                Verdict::NotVerified(..) => unreachable!("matched above"),
            }
            continue;
        };
        let Some(label) = &refutation.primary else {
            notes.insert(format!(
                "{}: refuted obligation carries no primary label",
                ob.proc_name
            ));
            continue;
        };
        if !matches!(
            label.kind,
            ObligationKind::ModifiesViolation | ObligationKind::ReadsViolation
        ) {
            notes.insert(format!(
                "{}: refuted {} obligation is not repairable by annotations ({})",
                ob.proc_name,
                label.kind.as_str(),
                label.detail
            ));
            continue;
        }
        if !in_scope(opts, &ob.proc_name) {
            notes.insert(format!(
                "{}: refuted {} obligation left alone (outside --proc filter)",
                ob.proc_name,
                label.kind.as_str()
            ));
            continue;
        }
        // Locate the offending command in the implementation body.
        let Some(proc_id) = scope.proc(&ob.proc_name) else {
            continue;
        };
        let pinfo = scope.proc_info(proc_id).clone();
        let mut translated = false;
        if label.kind == ObligationKind::ReadsViolation {
            // A read license only exists under a declared `reads` clause,
            // so the repair is always an extension of that clause — never
            // a membership, which would also widen `modifies` coverage.
            let declared_reads = declared_read_entries(&scope, proc_id).unwrap_or_default();
            for (_, iinfo) in scope.impls_of(proc_id) {
                let body = collect_events(&pinfo.params, &iinfo.body);
                for read in matching_reads(label, &body.reads) {
                    let (demands, ns) = read_demands(&graph, &body, read);
                    for n in ns {
                        notes.insert(format!("{}: {n}", ob.proc_name));
                    }
                    for entry in demands {
                        if graph.frame_covers(&declared_reads, &entry) {
                            continue;
                        }
                        proposals.push(Proposal {
                            proc: ob.proc_name.clone(),
                            kind: ProposalKind::ReadsExtend(entry),
                            provenance: Provenance::Repair,
                            round,
                        });
                        translated = true;
                    }
                }
            }
        } else {
            let declared = frames.get(&ob.proc_name).cloned().unwrap_or_default();
            let base = base_declared
                .get(&ob.proc_name)
                .cloned()
                .unwrap_or_default();
            for (_, iinfo) in scope.impls_of(proc_id) {
                let body = collect_events(&pinfo.params, &iinfo.body);
                for event in matching_events(label, &body.events) {
                    let (demands, ns) = event_demands(&graph, &body, event, &frames);
                    for n in ns {
                        notes.insert(format!("{}: {n}", ob.proc_name));
                    }
                    for entry in demands {
                        if graph.frame_covers(&declared, &entry) {
                            continue;
                        }
                        let kind = choose_kind(&graph, &base, &entry, allow_membership);
                        proposals.push(Proposal {
                            proc: ob.proc_name.clone(),
                            kind,
                            provenance: Provenance::Repair,
                            round,
                        });
                        translated = true;
                    }
                }
            }
        }
        if !translated {
            notes.insert(format!(
                "{}: could not translate refuted obligation to an annotation edit ({})",
                ob.proc_name, label.detail
            ));
        }
    }
    Ok(proposals)
}

/// Runs frame inference on one unit: the static phase, then the repair
/// loop, with a one-shot fallback that retracts group-membership edits
/// (re-expressing them as modifies extensions) when a membership broke an
/// unrelated proof.
pub fn infer(
    engine: &Engine,
    unit: &str,
    source: &str,
    opts: &InferOptions,
) -> Result<InferOutcome, String> {
    let first = run_attempt(engine, unit, source, opts, true)?;
    let had_membership = first
        .proposals
        .iter()
        .any(|p| matches!(p.kind, ProposalKind::Membership { .. }));
    let (chosen, fallback) = if !first.verified && had_membership {
        let second = run_attempt(engine, unit, source, opts, false)?;
        if second.verified {
            (second, true)
        } else {
            (first, false)
        }
    } else {
        (first, false)
    };
    let program = parse_program(source).map_err(|ds| format!("parse error: {ds}"))?;
    let edits = render_edits(&program, source, &chosen.proposals);
    for (p, e) in chosen.proposals.iter().zip(&edits) {
        if e.is_none() {
            // Should not happen (proposals name declarations of the same
            // program), but keep the invariant visible.
            return Err(format!(
                "no anchor for proposal on `{}` — declaration not found",
                p.proc
            ));
        }
    }
    Ok(InferOutcome {
        unit: unit.to_string(),
        edits,
        proposals: chosen.proposals,
        rounds: chosen.rounds,
        fixpoint: chosen.fixpoint,
        verified: chosen.verified,
        unverified_procs: chosen.unverified_procs.into_iter().collect(),
        notes: chosen.notes.into_iter().collect(),
        edited_source: chosen.edited_source,
        membership_fallback: fallback,
    })
}
