//! Inference reports: accuracy against generator ground truth and the
//! `infer --json` rendering (shared verbatim by the serve daemon's
//! `infer` request, keeping the two byte-compatible).

use oolong_engine::Json;
use oolong_sema::Scope;
use oolong_syntax::parse_program;

use crate::analysis::{declared_entries, FrameEntry, GroupGraph};
use crate::repair::InferOutcome;

/// Raw `(param index, attribute path)` entries of one procedure's
/// ground-truth frame, as recorded by the corpus generator.
pub type RawEntries = Vec<(usize, Vec<String>)>;

/// Ground-truth frames for accuracy measurement: per-procedure modifies
/// entries in `(param, attribute path)` form.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Procedure name → ground-truth entries.
    pub procs: Vec<(String, Vec<FrameEntry>)>,
}

impl GroundTruth {
    /// Builds ground truth from plain `(proc, entries)` tuples.
    pub fn new(procs: Vec<(String, RawEntries)>) -> GroundTruth {
        GroundTruth {
            procs: procs
                .into_iter()
                .map(|(name, entries)| {
                    (
                        name,
                        entries
                            .into_iter()
                            .map(|(param, path)| FrameEntry { param, path })
                            .collect(),
                    )
                })
                .collect(),
        }
    }
}

/// How one inferred frame compares to its ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Match {
    /// Mutually covering: the frames license the same locations.
    Exact,
    /// The inferred frame covers the truth but not vice versa: a sound
    /// over-approximation.
    Superset,
    /// Anything else (would indicate a missed write — unsound if the unit
    /// nevertheless verified, so this should never co-occur with
    /// `verified`).
    Other,
}

impl Match {
    fn as_str(self) -> &'static str {
        match self {
            Match::Exact => "exact",
            Match::Superset => "superset",
            Match::Other => "other",
        }
    }
}

/// Accuracy of an inference run against generator ground truth.
#[derive(Debug, Clone)]
pub struct Accuracy {
    /// Per-procedure comparisons, in ground-truth order.
    pub procs: Vec<(String, Match)>,
}

impl Accuracy {
    /// Number of procedures compared.
    pub fn total(&self) -> usize {
        self.procs.len()
    }

    /// Number with an exact frame match.
    pub fn exact(&self) -> usize {
        self.procs
            .iter()
            .filter(|(_, m)| *m == Match::Exact)
            .count()
    }

    /// Number with a strict-superset (sound over-approximation) frame.
    pub fn superset(&self) -> usize {
        self.procs
            .iter()
            .filter(|(_, m)| *m == Match::Superset)
            .count()
    }

    /// Number with any other relation.
    pub fn other(&self) -> usize {
        self.procs
            .iter()
            .filter(|(_, m)| *m == Match::Other)
            .count()
    }
}

/// Compares the final inferred frames (the declared modifies lists of the
/// fully applied source) against ground truth, using the applied program's
/// own group structure for the coverage relation.
pub fn accuracy(outcome: &InferOutcome, truth: &GroundTruth) -> Result<Accuracy, String> {
    let program = parse_program(&outcome.edited_source)
        .map_err(|ds| format!("parse error in applied unit: {ds}"))?;
    let scope =
        Scope::analyze(&program).map_err(|ds| format!("scope error in applied unit: {ds}"))?;
    let graph = GroupGraph::from_scope(&scope);
    let mut procs = Vec::new();
    for (name, truth_entries) in &truth.procs {
        let Some(id) = scope.proc(name) else {
            procs.push((name.clone(), Match::Other));
            continue;
        };
        let inferred: Vec<FrameEntry> = declared_entries(&scope, id).into_iter().collect();
        let fwd = all_covered(&graph, &inferred, truth_entries);
        let bwd = all_covered(&graph, truth_entries, &inferred);
        let m = match (fwd, bwd) {
            (true, true) => Match::Exact,
            (true, false) => Match::Superset,
            _ => Match::Other,
        };
        procs.push((name.clone(), m));
    }
    Ok(Accuracy { procs })
}

/// True when every entry of `entries` is covered by some entry of `frame`.
fn all_covered(graph: &GroupGraph, frame: &[FrameEntry], entries: &[FrameEntry]) -> bool {
    entries.iter().all(|e| {
        frame
            .iter()
            .any(|d| d.param == e.param && graph.entry_covers(&d.path, &e.path))
    })
}

/// Renders the full inference result as JSON — the single source of truth
/// for both `oolong infer --json` and the serve daemon's `infer` result.
pub fn infer_json(outcome: &InferOutcome, accuracy: Option<&Accuracy>, applied: bool) -> Json {
    let params_of = |proc: &str| outcome.params_of(proc);
    let proposals: Vec<Json> = outcome
        .proposals
        .iter()
        .zip(&outcome.edits)
        .map(|(p, e)| {
            let mut fields = vec![
                ("proc".to_string(), Json::Str(p.proc.clone())),
                ("kind".to_string(), Json::Str(p.kind_name().to_string())),
                ("target".to_string(), Json::Str(p.target(&params_of))),
                (
                    "provenance".to_string(),
                    Json::Str(p.provenance.as_str().to_string()),
                ),
                ("round".to_string(), Json::Int(p.round as i64)),
            ];
            let edit = match e {
                Some(e) => Json::Object(vec![
                    ("start".to_string(), Json::Int(e.start as i64)),
                    ("end".to_string(), Json::Int(e.end as i64)),
                    ("insert".to_string(), Json::Str(e.insert.clone())),
                ]),
                None => Json::Null,
            };
            fields.push(("edit".to_string(), edit));
            Json::Object(fields)
        })
        .collect();
    let statics = outcome
        .proposals
        .iter()
        .filter(|p| p.provenance == crate::edits::Provenance::Static)
        .count();
    let mut changed: Vec<&str> = outcome.proposals.iter().map(|p| p.proc.as_str()).collect();
    changed.sort_unstable();
    changed.dedup();
    let mut fields = vec![
        ("unit".to_string(), Json::Str(outcome.unit.clone())),
        ("rounds".to_string(), Json::Int(outcome.rounds as i64)),
        ("fixpoint".to_string(), Json::Bool(outcome.fixpoint)),
        ("verified".to_string(), Json::Bool(outcome.verified)),
        ("applied".to_string(), Json::Bool(applied)),
        (
            "membership_fallback".to_string(),
            Json::Bool(outcome.membership_fallback),
        ),
        ("proposals".to_string(), Json::Array(proposals)),
        (
            "unverified_procs".to_string(),
            Json::Array(
                outcome
                    .unverified_procs
                    .iter()
                    .map(|p| Json::Str(p.clone()))
                    .collect(),
            ),
        ),
        (
            "notes".to_string(),
            Json::Array(outcome.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
        (
            "summary".to_string(),
            Json::Object(vec![
                (
                    "proposals".to_string(),
                    Json::Int(outcome.proposals.len() as i64),
                ),
                ("static".to_string(), Json::Int(statics as i64)),
                (
                    "repair".to_string(),
                    Json::Int((outcome.proposals.len() - statics) as i64),
                ),
                ("procs_changed".to_string(), Json::Int(changed.len() as i64)),
            ]),
        ),
    ];
    if let Some(acc) = accuracy {
        fields.push((
            "accuracy".to_string(),
            Json::Object(vec![
                ("procs".to_string(), Json::Int(acc.total() as i64)),
                ("exact".to_string(), Json::Int(acc.exact() as i64)),
                ("superset".to_string(), Json::Int(acc.superset() as i64)),
                ("other".to_string(), Json::Int(acc.other() as i64)),
                (
                    "by_proc".to_string(),
                    Json::Array(
                        acc.procs
                            .iter()
                            .map(|(name, m)| {
                                Json::Object(vec![
                                    ("proc".to_string(), Json::Str(name.clone())),
                                    ("match".to_string(), Json::Str(m.as_str().to_string())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    Json::Object(fields)
}
