//! Inference unit specs shared by the CLI and the serve daemon.
//!
//! A spec is either a plain unit name (resolved by the caller, typically a
//! file path) or one of three scheme-prefixed forms:
//!
//! - `corpus:NAME` — a paper-corpus program as written.
//! - `stripped:NAME` — a paper-corpus program with the `modifies` clauses
//!   of all implemented procedures removed (the inference benchmark form).
//! - `unannotated:SEED` — a generated program with annotations stripped
//!   and generator ground truth attached for accuracy measurement.

use oolong_corpus::{by_name, generate_unannotated_source, UnannotatedConfig};

use crate::edits::strip_implemented_modifies;
use crate::report::GroundTruth;

/// A resolved inference unit: a named source with optional ground truth.
#[derive(Debug, Clone)]
pub struct InferUnit {
    /// Display name (the spec itself).
    pub name: String,
    /// Program source to infer on.
    pub source: String,
    /// Generator ground truth, when the spec carries one.
    pub truth: Option<GroundTruth>,
}

/// Resolves a scheme-prefixed spec. Returns `None` when the spec carries
/// no recognized scheme (the caller should treat it as a file or named
/// unit), `Some(Err(..))` when the scheme is recognized but resolution
/// fails.
pub fn resolve_spec(spec: &str) -> Option<Result<InferUnit, String>> {
    if let Some(name) = spec.strip_prefix("corpus:") {
        return Some(match by_name(name) {
            Some(p) => Ok(InferUnit {
                name: spec.to_string(),
                source: p.source.to_string(),
                truth: None,
            }),
            None => Err(format!("unknown corpus program `{name}`")),
        });
    }
    if let Some(name) = spec.strip_prefix("stripped:") {
        return Some(match by_name(name) {
            Some(p) => strip_implemented_modifies(p.source).map(|source| InferUnit {
                name: spec.to_string(),
                source,
                truth: None,
            }),
            None => Err(format!("unknown corpus program `{name}`")),
        });
    }
    if let Some(seed) = spec.strip_prefix("unannotated:") {
        return Some(match seed.parse::<u64>() {
            Ok(seed) => {
                let gen = generate_unannotated_source(seed, &UnannotatedConfig::default());
                let truth = GroundTruth::new(
                    gen.truth
                        .iter()
                        .map(|t| (t.proc.clone(), t.entries.clone()))
                        .collect(),
                );
                Ok(InferUnit {
                    name: spec.to_string(),
                    source: gen.source,
                    truth: Some(truth),
                })
            }
            Err(_) => Err(format!("invalid unannotated seed `{seed}`")),
        });
    }
    None
}
