//! E16: the cost of position labels in verification conditions.
//!
//! Every proof obligation is wrapped in a labelled marker so a refutation
//! can be attributed to a source command (see `crates/diagnose`). Labels
//! are logically transparent — the differential suite asserts identical
//! outcomes and prover counters — so any cost is pure bookkeeping:
//! carrying label sets through NNF conversion and recording them on
//! branch literals. This bench pins that overhead under 10% by proving
//! each VC as generated (labelled) and with every label stripped.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagroups::{CheckOptions, Checker, Vc};
use oolong_corpus::{generate_branchy_source, paper};
use oolong_syntax::parse_program;

/// The VCs of every implementation in the program, as generated (with
/// labels embedded in the goals).
fn vcs_for(source: &str) -> (Checker, Vec<Vc>) {
    let program = parse_program(source).expect("parses");
    let checker = Checker::new(&program, CheckOptions::default()).expect("analyses");
    let ids: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
    let vcs = ids
        .into_iter()
        .filter_map(|id| checker.vc(id).ok())
        .collect();
    (checker, vcs)
}

/// The same VC with every position label removed.
fn strip(vc: &Vc) -> Vc {
    Vc {
        impl_id: vc.impl_id,
        proc_name: vc.proc_name.clone(),
        hypotheses: vc.hypotheses.iter().map(|h| h.strip_labels()).collect(),
        background_hyps: vc.background_hyps,
        goal: vc.goal.strip_labels(),
        labels: Vec::new(),
    }
}

fn prove_all(checker: &Checker, vcs: &[Vc]) -> usize {
    let mut instances = 0;
    for vc in vcs {
        let verdict = checker.verdict_for_vc(vc);
        instances += verdict.stats().map_or(0, |s| s.instances);
    }
    instances
}

/// E16: labelled vs label-stripped proving over a branch-heavy program
/// (many case splits, so label sets ride through every branch literal)
/// and the paper's §5 cyclic example (instantiation-heavy baseline).
fn e16_label_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_label_overhead");
    group.sample_size(10);
    let programs = [
        ("branchy_depth4", generate_branchy_source(1, 4)),
        ("branchy_depth5", generate_branchy_source(1, 5)),
        ("example3", paper::EXAMPLE3.source.to_string()),
    ];
    for (name, source) in programs {
        let (checker, labelled) = vcs_for(&source);
        let stripped: Vec<Vc> = labelled.iter().map(strip).collect();
        group.bench_with_input(BenchmarkId::new("labelled", name), &labelled, |b, vcs| {
            b.iter(|| prove_all(&checker, vcs))
        });
        group.bench_with_input(BenchmarkId::new("stripped", name), &stripped, |b, vcs| {
            b.iter(|| prove_all(&checker, vcs))
        });
    }
    group.finish();
}

criterion_group!(benches, e16_label_overhead);
criterion_main!(benches);
