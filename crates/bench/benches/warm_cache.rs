//! E13: cold-vs-warm batch verification through the incremental engine.
//!
//! The cold path parses, analyses, fingerprints, and proves every corpus
//! obligation; the warm path does everything except the proving, which it
//! serves from the verdict cache. The gap between the two groups is the
//! engine's raison d'être.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oolong_corpus::paper;
use oolong_engine::{BatchUnit, Engine, EngineOptions};

fn corpus_units() -> Vec<BatchUnit> {
    paper::all()
        .iter()
        .map(|p| BatchUnit {
            name: p.name.to_string(),
            source: p.source.to_string(),
        })
        .collect()
}

/// E13a: cold batch — a fresh engine (empty cache) per iteration.
fn e13_cold_batch(c: &mut Criterion) {
    let units = corpus_units();
    let mut group = c.benchmark_group("e13_cold_batch");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("corpus"), &units, |b, units| {
        b.iter(|| {
            let engine = Engine::new(EngineOptions::default()).expect("in-memory engine");
            engine.check_batch(units)
        });
    });
    group.finish();
}

/// E13b: warm batch — one engine, cache populated before timing; every
/// fingerprinted obligation is a hit and no prover call happens.
fn e13_warm_cache(c: &mut Criterion) {
    let units = corpus_units();
    let engine = Engine::new(EngineOptions::default()).expect("in-memory engine");
    let cold = engine.check_batch(&units);
    assert!(cold.prover_calls > 0, "the cold run populates the cache");
    let mut group = c.benchmark_group("e13_warm_cache");
    group.bench_with_input(BenchmarkId::from_parameter("corpus"), &units, |b, units| {
        b.iter(|| {
            let warm = engine.check_batch(units);
            assert_eq!(warm.prover_calls, 0, "warm runs never reach the prover");
            warm
        });
    });
    group.finish();
}

criterion_group!(benches, e13_cold_batch, e13_warm_cache);
criterion_main!(benches);
