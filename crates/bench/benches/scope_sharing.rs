//! E19: scope-shared prover contexts and axiom slicing, cold and warm.
//!
//! * `e19_cold_matrix` — the full paper-corpus batch (parse, analysis, VC
//!   generation, proving) under each cell of the strategy matrix:
//!   {shared, per-obligation} contexts x {sliced, full} backgrounds. The
//!   shared cells saturate each scope's background once and prove every
//!   obligation of the scope inside a trail frame on top; the
//!   per-obligation cells rebuild and resaturate a one-shot context per VC
//!   through the same code path, so outcomes and statistics agree exactly
//!   (tests/differential.rs pins this).
//! * `e19_engine_cold` — the same default-strategy batch through the
//!   incremental engine: fingerprinting plus the context pool, empty
//!   caches.
//! * `e19_edit_reverify` — re-verification with the verdict store
//!   disabled (modelling an edit whose fingerprint misses): every round
//!   reproves the scope's obligations, and a resident engine serves the
//!   scope's saturated context from the warm pool where a cold engine
//!   resaturates it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagroups::{CheckOptions, Checker};
use oolong_corpus::paper;
use oolong_engine::{BatchUnit, Engine, EngineOptions, MemoryTier};
use oolong_syntax::parse_program;

fn corpus_batch(options: &CheckOptions) -> usize {
    let mut verified = 0;
    for p in paper::all() {
        let program = parse_program(p.source).expect("corpus parses");
        let checker = Checker::new(&program, options.clone()).expect("corpus analyses");
        let report = checker.check_all();
        verified += report.tally().0;
    }
    verified
}

/// E19a: the cold strategy matrix over the whole corpus.
fn e19_cold_matrix(c: &mut Criterion) {
    let cells: [(&str, bool, bool); 4] = [
        ("shared_sliced", true, true),
        ("shared_full", true, false),
        ("per_ob_sliced", false, true),
        ("per_ob_full", false, false),
    ];
    let mut group = c.benchmark_group("e19_cold_matrix");
    group.sample_size(10);
    for (name, share, slice) in cells {
        let options = CheckOptions {
            share_contexts: share,
            slice_axioms: slice,
            ..CheckOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &options, |b, options| {
            b.iter(|| corpus_batch(options));
        });
    }
    group.finish();
}

fn corpus_units() -> Vec<BatchUnit> {
    paper::all()
        .iter()
        .map(|p| BatchUnit {
            name: p.name.to_string(),
            source: p.source.to_string(),
        })
        .collect()
}

/// E19b: the cold batch through the engine (fingerprints + context pool).
fn e19_engine_cold(c: &mut Criterion) {
    let units = corpus_units();
    let mut group = c.benchmark_group("e19_engine_cold");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("corpus"), &units, |b, units| {
        b.iter(|| {
            let engine = Engine::new(EngineOptions::default()).expect("in-memory engine");
            engine.check_batch(units)
        });
    });
    group.finish();
}

/// E19c: re-verification on a resident engine versus a cold start. The
/// verdict store is a zero-capacity tier, modelling an edited body whose
/// fingerprint misses: every round genuinely reproves the scope's three
/// obligations (asserted per iteration). The resident engine checks the
/// scope's saturated context out of the warm pool; the cold engine
/// rebuilds and resaturates it from scratch. (A *constant* edit would not
/// force this: assigned values never enter a modifies VC, so
/// `r.f := 1` → `:= 2` keeps the fingerprint and is answered from the
/// verdict cache — that replay path is E13/E18's win, not this one.)
fn e19_edit_reverify(c: &mut Criterion) {
    const UNIT: &str = "group g
         field f in g
         proc p(r) modifies r.g
         impl p(r) { r.f := 1 }
         proc q(r) modifies r.g
         impl q(r) { r.f := 2 }
         proc caller(r) modifies r.g
         impl caller(r) { q(r) }";
    // Slicing off so the scope's obligations share one context key.
    let options = EngineOptions {
        check: CheckOptions {
            slice_axioms: false,
            ..CheckOptions::default()
        },
        ..EngineOptions::default()
    };
    let no_cache = || Arc::new(MemoryTier::with_capacity(0));
    let mut group = c.benchmark_group("e19_edit_reverify");
    let engine = Engine::with_store(options.clone(), no_cache());
    engine.check_source("unit", UNIT);
    group.bench_function("warm_pool", |b| {
        b.iter(|| {
            let report = engine.check_source("unit", UNIT);
            assert_eq!(report.prover_calls, 3, "every round must reprove");
            assert_eq!(report.cache_hits, 0);
            report
        })
    });
    let metrics = engine.contexts().metrics();
    assert!(metrics.hits > 0, "re-verification reuses the scope context");
    group.bench_function("cold_engine", |b| {
        b.iter(|| {
            let engine = Engine::with_store(options.clone(), no_cache());
            let report = engine.check_source("unit", UNIT);
            assert_eq!(report.prover_calls, 3);
            report
        })
    });
    group.finish();
}

criterion_group!(benches, e19_cold_matrix, e19_engine_cold, e19_edit_reverify);
criterion_main!(benches);
