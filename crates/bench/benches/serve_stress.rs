//! E18: many-client stress against the resident verification service.
//!
//! Starts an in-process `oolong serve` daemon on a Unix socket backed by
//! a fresh disk cache, then drives it with concurrent client sessions
//! over the whole paper corpus:
//!
//! * **cold** — one pass by N clients starting from an empty cache.
//!   Each client carries a distinct per-request prover budget; budgets
//!   are part of the verdict fingerprint, so every client's cold pass
//!   genuinely proves its obligations instead of free-riding on a
//!   verdict another client finished a millisecond earlier (which would
//!   make "cold" mostly warm and the comparison meaningless);
//! * **warm** — repeated passes by the same clients with the same
//!   budgets: every fingerprinted obligation is served from the shared
//!   in-memory tier without a prover call.
//!
//! Reported per phase: wall-clock, request throughput, and client-side
//! latency percentiles (p50/p95/p99, nearest-rank). The acceptance bar
//! for BENCH_e18.json is warm throughput ≥ 5× cold with ≥ 8 concurrent
//! clients. Run with `cargo bench -p oolong-bench --bench serve_stress`.

use oolong_serve::{response_ok, Client, ServeOptions, Server};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const CLIENTS: usize = 8;
const WARM_ROUNDS: usize = 5;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Phase {
    name: &'static str,
    requests: usize,
    wall_ms: f64,
    latencies: Vec<f64>,
}

impl Phase {
    fn report(&self) {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        println!(
            "e18_{}: {} requests in {:.1} ms  ({:.0} req/s)  p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
            self.name,
            self.requests,
            self.wall_ms,
            self.requests as f64 / (self.wall_ms / 1_000.0),
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.95),
            percentile(&sorted, 0.99),
            sorted.last().copied().unwrap_or(0.0),
        );
    }

    fn throughput(&self) -> f64 {
        self.requests as f64 / (self.wall_ms / 1_000.0)
    }
}

/// One pass: every client checks every corpus unit once (each client
/// walks the corpus at its own offset so misses overlap), latencies
/// recorded client-side.
fn pass(name: &'static str, socket: &std::path::Path, units: &[String]) -> Phase {
    let start_gate = Arc::new(Barrier::new(CLIENTS + 1));
    let wall = std::thread::scope(|scope| {
        let mut threads = Vec::new();
        for client_id in 0..CLIENTS {
            let start_gate = start_gate.clone();
            threads.push(scope.spawn(move || {
                let mut client = Client::connect(socket).expect("connects");
                start_gate.wait();
                let mut latencies = Vec::with_capacity(units.len());
                // A distinct budget per client: same verdicts (the
                // default budget already suffices for the whole corpus),
                // distinct fingerprints, honest cold-phase prover work.
                let budget = 120_000 + client_id;
                for i in 0..units.len() {
                    let unit = &units[(i + client_id * units.len() / CLIENTS) % units.len()];
                    let sent = Instant::now();
                    let response = client
                        .request(&format!(
                            r#"{{"cmd":"check","unit":"{unit}","options":{{"max_instances":{budget}}}}}"#
                        ))
                        .expect("response");
                    latencies.push(sent.elapsed().as_secs_f64() * 1_000.0);
                    assert!(response_ok(&response), "{unit}: {response:?}");
                }
                latencies
            }));
        }
        start_gate.wait();
        let started = Instant::now();
        let latencies: Vec<f64> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect();
        (started.elapsed().as_secs_f64() * 1_000.0, latencies)
    });
    Phase {
        name,
        requests: CLIENTS * units.len(),
        wall_ms: wall.0,
        latencies: wall.1,
    }
}

fn main() {
    // `cargo bench` passes harness flags; this bench takes none.
    let dir = std::env::temp_dir().join(format!("oolong-e18-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let server = Server::bind(ServeOptions {
        socket: dir.join("oolong.sock"),
        cache_dir: Some(dir.join("cache")),
        quiet: true,
        ..ServeOptions::default()
    })
    .expect("server binds");
    let socket = server.socket().to_path_buf();
    let handle = server.spawn();

    let units: Vec<String> = oolong_corpus::all()
        .iter()
        .map(|p| format!("corpus:{}", p.name))
        .collect();
    println!(
        "e18_serve_stress: {CLIENTS} clients x {} corpus units, {WARM_ROUNDS} warm rounds",
        units.len()
    );

    let cold = pass("cold", &socket, &units);
    cold.report();
    let mut warm_all = Phase {
        name: "warm",
        requests: 0,
        wall_ms: 0.0,
        latencies: Vec::new(),
    };
    for _ in 0..WARM_ROUNDS {
        let round = pass("warm_round", &socket, &units);
        warm_all.requests += round.requests;
        warm_all.wall_ms += round.wall_ms;
        warm_all.latencies.extend(round.latencies);
    }
    warm_all.report();

    let speedup = warm_all.throughput() / cold.throughput();
    println!("e18_speedup: warm/cold throughput = {speedup:.1}x");

    let mut client = Client::connect(&socket).expect("connects");
    let stats = client.request(r#"{"cmd":"stats"}"#).expect("stats");
    println!("e18_server_stats: {}", stats.render());
    client.request(r#"{"cmd":"shutdown"}"#).expect("shutdown");
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        speedup >= 5.0,
        "acceptance: warm-cache throughput must be >= 5x cold (got {speedup:.1}x)"
    );
}
