//! Criterion benchmarks regenerating the timing-flavoured experiments
//! (E1–E9 in `DESIGN.md`). Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagroups::{CheckOptions, Checker};
use oolong_corpus::{generate_source, paper, GenConfig};
use oolong_prover::{prove, Budget};
use oolong_sema::{closure_for_impl, subset_program, Scope};
use oolong_syntax::{parse_program, Decl};

/// E1: parsing and scope analysis of the corpus.
fn e01_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_parse");
    for p in [paper::SECTION30_FULL, paper::EXAMPLE1, paper::STACK_MODULE] {
        group.bench_with_input(BenchmarkId::from_parameter(p.name), &p, |b, p| {
            b.iter(|| {
                let program = parse_program(p.source).expect("parses");
                Scope::analyze(&program).expect("analyses")
            });
        });
    }
    group.finish();
}

fn bench_check(
    c: &mut Criterion,
    group_name: &str,
    programs: &[paper::CorpusProgram],
    naive: bool,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for p in programs {
        let program = parse_program(p.source).expect("parses");
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name),
            &program,
            |b, program| {
                b.iter(|| {
                    let options = CheckOptions {
                        naive,
                        ..CheckOptions::default()
                    };
                    Checker::new(program, options)
                        .expect("analyses")
                        .check_all()
                });
            },
        );
    }
    group.finish();
}

/// E2: the §3.0 programs under the restricted checker.
fn e02_pivot(c: &mut Criterion) {
    bench_check(
        c,
        "e02_pivot",
        &[paper::SECTION30_Q, paper::SECTION30_FULL],
        false,
    );
}

/// E2 (baseline): same programs under the naive closed-world checker.
fn e02_pivot_naive(c: &mut Criterion) {
    bench_check(
        c,
        "e02_pivot_naive",
        &[paper::SECTION30_Q, paper::SECTION30_FULL],
        true,
    );
}

/// E3: the §3.1 programs.
fn e03_owner(c: &mut Criterion) {
    bench_check(
        c,
        "e03_owner",
        &[paper::SECTION31_W, paper::SECTION31_BAD_CALL],
        false,
    );
}

/// E4/E5: the §5 worked examples.
fn e04_e05_examples(c: &mut Criterion) {
    bench_check(
        c,
        "e04_e05_examples",
        &[paper::EXAMPLE1, paper::EXAMPLE2],
        false,
    );
}

/// E6: the cyclic-inclusion example at the default and starved budgets.
fn e06_cyclic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_cyclic");
    group.sample_size(10);
    let program = parse_program(paper::EXAMPLE3.source).expect("parses");
    for (label, budget) in [("default", Budget::default()), ("starved", Budget::tiny())] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &budget, |b, budget| {
            b.iter(|| {
                let options = CheckOptions {
                    budget: budget.clone(),
                    ..CheckOptions::default()
                };
                Checker::new(&program, options)
                    .expect("analyses")
                    .check_all()
            });
        });
    }
    group.finish();
}

/// E7: modular checking — every implementation in its closure scope.
fn e07_monotonic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_monotonic");
    group.sample_size(10);
    let program = parse_program(paper::STACK_MODULE.source).expect("parses");
    group.bench_function("stack_module_modular", |b| {
        b.iter(|| {
            for (i, decl) in program.decls.iter().enumerate() {
                if matches!(decl, Decl::Impl(_)) {
                    let sub = subset_program(&program, &closure_for_impl(&program, i));
                    Checker::new(&sub, CheckOptions::default())
                        .expect("analyses")
                        .check_all();
                }
            }
        });
    });
    group.finish();
}

/// E8: checker wall-clock versus generated program size.
fn e08_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_scaling");
    group.sample_size(10);
    for (label, cfg) in [
        ("small", GenConfig::default()),
        (
            "medium",
            GenConfig {
                groups: 5,
                fields: 9,
                procs: 7,
                impls: 6,
                body_len: 7,
                ..GenConfig::default()
            },
        ),
        (
            "large",
            GenConfig {
                groups: 8,
                fields: 14,
                procs: 10,
                impls: 9,
                body_len: 9,
                ..GenConfig::default()
            },
        ),
    ] {
        let source = generate_source(42, &cfg);
        let program = parse_program(&source).expect("parses");
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &program,
            |b, program| {
                b.iter(|| {
                    Checker::new(program, CheckOptions::default())
                        .expect("analyses")
                        .check_all()
                });
            },
        );
    }
    group.finish();
}

/// E9: the raw prover on each corpus VC.
fn e09_prover_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_prover_profile");
    group.sample_size(10);
    for p in [
        paper::SECTION31_W,
        paper::EXAMPLE2,
        paper::EXAMPLE3,
        paper::RATIONAL,
    ] {
        let program = parse_program(p.source).expect("parses");
        let checker = Checker::new(&program, CheckOptions::default()).expect("analyses");
        let vcs: Vec<_> = checker
            .scope()
            .impls()
            .map(|(id, _)| checker.vc(id).expect("vc generates"))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(p.name), &vcs, |b, vcs| {
            b.iter(|| {
                for vc in vcs {
                    prove(&vc.hypotheses, &vc.goal, &Budget::default());
                }
            });
        });
    }
    group.finish();
}

/// E10: specification-overhead measurement.
fn e10_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_overhead");
    for p in [paper::STACK_MODULE, paper::RATIONAL] {
        let program = parse_program(p.source).expect("parses");
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name),
            &program,
            |b, program| {
                b.iter(|| datagroups::overhead(program));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    e01_parse,
    e02_pivot,
    e02_pivot_naive,
    e03_owner,
    e04_e05_examples,
    e06_cyclic,
    e07_monotonic,
    e08_scaling,
    e09_prover_profile,
    e10_overhead
);
criterion_main!(benches);
