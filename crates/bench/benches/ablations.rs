//! Ablation benchmarks for the design choices `DESIGN.md` calls out.
//!
//! * `matching_depth` — sweeps `Budget::max_term_gen` on the two hardest
//!   corpus VCs (§3.0's `q` and the cyclic `updateAll`), quantifying how
//!   the generation-stamped matching-depth control trades completeness
//!   against divergence.
//! * `naive_vs_restricted` — the cost of the full alias-confinement
//!   machinery versus the closed-world naive baseline on the same inputs.
//! * `null_checks` — the cost of the definedness side conditions the paper
//!   elides.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagroups::{CheckOptions, Checker};
use oolong_corpus::paper;
use oolong_prover::Budget;
use oolong_syntax::parse_program;

fn matching_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_matching_depth");
    group.sample_size(10);
    for program_src in [paper::SECTION30_Q, paper::EXAMPLE3] {
        let program = parse_program(program_src.source).expect("parses");
        for gen in [1u32, 2, 3] {
            let budget = Budget {
                max_term_gen: gen,
                ..Budget::default()
            };
            group.bench_with_input(
                BenchmarkId::new(program_src.name, gen),
                &budget,
                |b, budget| {
                    b.iter(|| {
                        let options = CheckOptions {
                            budget: budget.clone(),
                            ..CheckOptions::default()
                        };
                        Checker::new(&program, options)
                            .expect("analyses")
                            .check_all()
                    });
                },
            );
        }
    }
    group.finish();
}

fn naive_vs_restricted(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_naive_vs_restricted");
    group.sample_size(10);
    let program = parse_program(paper::SECTION31_BAD_CALL.source).expect("parses");
    for (label, naive) in [("restricted", false), ("naive", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &naive, |b, &naive| {
            b.iter(|| {
                let options = CheckOptions {
                    naive,
                    ..CheckOptions::default()
                };
                Checker::new(&program, options)
                    .expect("analyses")
                    .check_all()
            });
        });
    }
    group.finish();
}

fn null_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_null_checks");
    group.sample_size(10);
    let program = parse_program(paper::STACK_MODULE.source).expect("parses");
    for (label, null_checks) in [("elided", false), ("checked", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &null_checks,
            |b, &null_checks| {
                b.iter(|| {
                    let options = CheckOptions {
                        null_checks,
                        ..CheckOptions::default()
                    };
                    Checker::new(&program, options)
                        .expect("analyses")
                        .check_all()
                });
            },
        );
    }
    group.finish();
}

fn arrays_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_arrays_level");
    group.sample_size(10);
    // A plain program checked at both language levels: the cost of the
    // extended axiom (4) and the slot axioms when unused.
    let program = parse_program(paper::STACK_MODULE.source).expect("parses");
    for (label, force) in [("plain", false), ("arrays", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &force, |b, &force| {
            b.iter(|| {
                let options = CheckOptions {
                    force_arrays_level: force,
                    ..CheckOptions::default()
                };
                Checker::new(&program, options)
                    .expect("analyses")
                    .check_all()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    matching_depth,
    naive_vs_restricted,
    null_checks,
    arrays_level
);
criterion_main!(benches);
