//! E14: cost of the always-on prover telemetry and of divergence
//! attribution.
//!
//! The prover counts instantiations, trigger matches, E-graph merges, and
//! case splits on every proof attempt — there is no "profiling build" to
//! opt into. E14a measures a full verification of the paper's §5 cyclic
//! rep-inclusion example with that accounting running, which is the
//! telemetry's total cost (the seed had no unprofiled prover to compare
//! against, and keeping one would fork the search loop). E14b starves the
//! same obligation with `Budget::tiny()` and additionally builds the
//! divergence attribution — the per-axiom culprit ranking printed by
//! `oolong check --explain-unknown` — so the gap between the groups bounds
//! what attribution itself costs on top of a (much shorter) failed search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagroups::{CheckOptions, Checker};
use oolong_corpus::paper;
use oolong_prover::Budget;
use oolong_syntax::parse_program;

/// E14a: verify §5's cyclic example with telemetry on (the only mode).
fn e14_cold_profile(c: &mut Criterion) {
    let program = parse_program(paper::EXAMPLE3.source).expect("parses");
    let mut group = c.benchmark_group("e14_cold_profile");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(paper::EXAMPLE3.name),
        &program,
        |b, program| {
            b.iter(|| {
                let report = Checker::new(program, CheckOptions::default())
                    .expect("analyses")
                    .check_all();
                let stats = report.impls[0].verdict.stats().expect("prover ran");
                assert!(!stats.per_quant.is_empty(), "telemetry is always on");
                report
            });
        },
    );
    group.finish();
}

/// E14b: starve the same obligation and attribute the divergence.
fn e14_divergence_attribution(c: &mut Criterion) {
    let program = parse_program(paper::EXAMPLE3.source).expect("parses");
    let options = CheckOptions {
        budget: Budget::tiny(),
        ..CheckOptions::default()
    };
    let mut group = c.benchmark_group("e14_divergence_attribution");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(paper::EXAMPLE3.name),
        &program,
        |b, program| {
            b.iter(|| {
                let report = Checker::new(program, options.clone())
                    .expect("analyses")
                    .check_all();
                let divergence = report.impls[0]
                    .verdict
                    .divergence()
                    .expect("tiny budget diverges on the cyclic example");
                assert!(!divergence.culprits.is_empty(), "culprits are ranked");
                divergence
            });
        },
    );
    group.finish();
}

criterion_group!(benches, e14_cold_profile, e14_divergence_attribution);
criterion_main!(benches);
