//! E17: interned symbols and the hash-consed term arena.
//!
//! The VC pipeline builds terms into a global hash-consed arena
//! (`Term(u32)` handles over immutable shared nodes) with interned
//! symbols (`Symbol(u32)`) instead of owned string trees. This bench
//! measures the pipeline stages the representation change touches:
//!
//! * `e17_vcgen` — pure VC construction (parse → analyse → wlp →
//!   background axioms) over the whole paper corpus, no proving. Every
//!   term the generator builds is an arena intern instead of a tree
//!   allocation.
//! * `e17_cold_batch` — full cold verification (`Checker::check_all`,
//!   default trail search) over the whole paper corpus: the end-to-end
//!   number the incremental engine's cold path pays per obligation.
//! * `e17_subst_sharing` — the transform layer's worst former habit:
//!   substituting through a conjunction whose conjuncts share one large
//!   subterm. The memoized arena substitution rewrites the shared
//!   subterm once; the old deep-copy substitution rewrote it per
//!   occurrence.
//!
//! There is no in-process "string-tree" baseline to race against — the
//! old representation no longer compiles — so BENCH_e17.json compares
//! these numbers against the pre-refactor medians recorded for the same
//! workloads (BENCH_e15.json and the identically-shaped groups here),
//! plus peak-RSS figures captured around the cold batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagroups::{CheckOptions, Checker};
use oolong_corpus::paper;
use oolong_logic::{Formula, Term};
use oolong_syntax::parse_program;

/// Parses and analyses every paper-corpus program once; iterations then
/// measure VC construction alone.
fn e17_vcgen(c: &mut Criterion) {
    let programs: Vec<_> = paper::all()
        .into_iter()
        .map(|p| parse_program(p.source).expect("corpus parses"))
        .collect();
    let mut group = c.benchmark_group("e17_vcgen");
    group.sample_size(20);
    group.bench_function("paper_corpus", |b| {
        b.iter(|| {
            let mut vcs = 0usize;
            for program in &programs {
                let checker = Checker::new(program, CheckOptions::default()).expect("analyses");
                let impl_ids: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
                for impl_id in impl_ids {
                    if checker.vc(impl_id).is_ok() {
                        vcs += 1;
                    }
                }
            }
            vcs
        });
    });
    group.finish();
}

/// Cold end-to-end batch: every obligation of every corpus program is
/// proved from scratch each iteration.
fn e17_cold_batch(c: &mut Criterion) {
    let programs: Vec<_> = paper::all()
        .into_iter()
        .map(|p| parse_program(p.source).expect("corpus parses"))
        .collect();
    let mut group = c.benchmark_group("e17_cold_batch");
    group.sample_size(10);
    group.bench_function("paper_corpus", |b| {
        b.iter(|| {
            let mut verified = 0usize;
            for program in &programs {
                let report = Checker::new(program, CheckOptions::default())
                    .expect("analyses")
                    .check_all();
                verified += report.impls.len();
            }
            verified
        });
    });
    group.finish();
}

/// A store-shaped term of the given depth: nested updates over `$`.
fn deep_store(depth: usize) -> Term {
    let mut store = Term::store();
    for i in 0..depth {
        store = Term::update(
            store,
            Term::var("x"),
            Term::attr(format!("f{i}")),
            Term::int(i as i64),
        );
    }
    store
}

/// Substitution through heavy sharing: `width` equalities all mention
/// the same `depth`-deep store term, and the substitution rewrites the
/// store variable inside it.
fn e17_subst_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_subst_sharing");
    group.sample_size(20);
    for (width, depth) in [(64usize, 64usize), (256, 128)] {
        let shared = deep_store(depth);
        let conj = Formula::and(
            (0..width)
                .map(|i| {
                    Formula::eq(
                        Term::select(shared, Term::var("x"), Term::attr(format!("g{i}"))),
                        Term::int(i as i64),
                    )
                })
                .collect(),
        );
        let image = Term::succ(Term::store());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w{width}_d{depth}")),
            &conj,
            |b, conj| {
                b.iter(|| conj.subst(&[(oolong_logic::STORE.into(), image)]));
            },
        );
    }
    group.finish();
}

/// Not a timing group: reports the process peak RSS after the other
/// groups ran, for the memory row of BENCH_e17.json.
fn e17_peak_rss(_c: &mut Criterion) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if line.starts_with("VmHWM") || line.starts_with("VmRSS") {
            println!(
                "e17_peak_rss {}",
                line.split_whitespace()
                    .skip(1)
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
    }
}

criterion_group!(
    benches,
    e17_vcgen,
    e17_cold_batch,
    e17_subst_sharing,
    e17_peak_rss
);
criterion_main!(benches);
