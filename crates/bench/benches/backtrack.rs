//! E15: trail-based backtracking search vs the clone-per-branch
//! reference.
//!
//! The prover explores case splits by checkpointing the E-graph with an
//! undo trail (`push`/`pop`), where the seed cloned the entire search
//! context for every branch arm. Both strategies execute the identical
//! search — the differential suite asserts outcome and counter equality —
//! so the gap between the groups here is purely the cost of cloning
//! E-graphs versus unwinding trails. Branch-heavy programs (chains of
//! guarded choices, 2^depth paths per VC) make that gap the dominant
//! cost; the paper corpus' §5 example is included as a low-branching
//! baseline where the two should be close.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagroups::{CheckOptions, Checker};
use oolong_corpus::{generate_branchy_source, paper};
use oolong_prover::SearchStrategy;
use oolong_syntax::parse_program;

fn check_with(program: &oolong_syntax::Program, strategy: SearchStrategy) -> u64 {
    let options = CheckOptions {
        strategy,
        ..CheckOptions::default()
    };
    let report = Checker::new(program, options)
        .expect("analyses")
        .check_all();
    let stats = report.impls[0].verdict.stats().expect("prover ran");
    assert!(report.all_verified(), "bench programs verify");
    stats.branches
}

/// E15a: branch-heavy verification, trail vs clone, by choice depth.
fn e15_branchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_branchy");
    group.sample_size(10);
    for depth in [4usize, 5, 6] {
        let source = generate_branchy_source(1, depth);
        let program = parse_program(&source).expect("parses");
        for (label, strategy) in [
            ("trail", SearchStrategy::Trail),
            ("clone", SearchStrategy::CloneSearch),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("depth{depth}")),
                &program,
                |b, program| {
                    b.iter(|| check_with(program, strategy));
                },
            );
        }
    }
    group.finish();
}

/// E15b: the paper's §5 cyclic example — few splits, so the strategies
/// should be near-indistinguishable (the trail must not tax the
/// straight-line search it replaced cloning for).
fn e15_paper_baseline(c: &mut Criterion) {
    let program = parse_program(paper::EXAMPLE3.source).expect("parses");
    let mut group = c.benchmark_group("e15_paper_baseline");
    group.sample_size(10);
    for (label, strategy) in [
        ("trail", SearchStrategy::Trail),
        ("clone", SearchStrategy::CloneSearch),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &program,
            |b, program| {
                b.iter(|| check_with(program, strategy));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, e15_branchy, e15_paper_baseline);
criterion_main!(benches);
