//! Cold-batch regression probe: the `e19_engine_cold` measurement as a
//! plain binary, for CI gating and experiment records.
//!
//! Each sample constructs a fresh [`Engine`] (empty caches, empty context
//! pool) and checks the full paper corpus through it — fingerprinting,
//! context pooling, and proving all run cold. The probe prints one JSON
//! object with the raw samples and their median, and exits nonzero when
//! `--threshold-ms` is given and the median exceeds it, so a workflow can
//! use it directly as a merge gate without parsing benchmark harness
//! output.
//!
//! Flags:
//! * `--samples N` — timed samples after one warmup (default 10)
//! * `--threshold-ms X` — fail (exit 1) if the median exceeds X
//! * `--all-eager` — disable the declared pattern policies, forcing every
//!   background axiom into pre-saturation (the pre-gating schedule); used
//!   to measure what the goal-directed phase is worth
//! * `--invariant-corpus` — swap the unit set for the generated
//!   invariant + read-effect populations (10 seeds each), so the
//!   invariant-preserved and read-license obligation kinds get their own
//!   cold-batch regression gate

use std::time::Instant;

use datagroups::CheckOptions;
use oolong_corpus::paper;
use oolong_engine::{BatchUnit, Engine, EngineOptions};

fn corpus_units() -> Vec<BatchUnit> {
    paper::all()
        .iter()
        .map(|p| BatchUnit {
            name: p.name.to_string(),
            source: p.source.to_string(),
        })
        .collect()
}

fn invariant_units() -> Vec<BatchUnit> {
    (0..10u64)
        .flat_map(|seed| {
            [
                BatchUnit {
                    name: format!("invariant-{seed}"),
                    source: oolong_corpus::generate_invariant_source(seed),
                },
                BatchUnit {
                    name: format!("reads-{seed}"),
                    source: oolong_corpus::generate_read_effect_source(seed),
                },
            ]
        })
        .collect()
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let samples: usize = arg_value(&args, "--samples")
        .map(|v| v.parse().expect("--samples takes a count"))
        .unwrap_or(10);
    let threshold_ms: Option<f64> =
        arg_value(&args, "--threshold-ms").map(|v| v.parse().expect("--threshold-ms takes ms"));
    let pattern_policies = !args.iter().any(|a| a == "--all-eager");
    let invariant_corpus = args.iter().any(|a| a == "--invariant-corpus");

    let options = EngineOptions {
        check: CheckOptions {
            pattern_policies,
            ..CheckOptions::default()
        },
        ..EngineOptions::default()
    };
    let units = if invariant_corpus {
        invariant_units()
    } else {
        corpus_units()
    };
    let run = || {
        let engine = Engine::new(options.clone()).expect("in-memory engine");
        engine.check_batch(&units)
    };

    // Warmup: keeps the first timed sample from paying one-time allocator
    // growth, and records the verdict tally every later sample must match.
    let expected = run().tally();

    let mut times_ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let report = run();
        times_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
        assert_eq!(
            report.tally(),
            expected,
            "verdicts drifted between probe samples"
        );
    }
    let mut sorted = times_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = sorted[sorted.len() / 2];
    let pass = threshold_ms.map(|t| median <= t);

    let probe = if invariant_corpus {
        "invariant_cold_batch"
    } else {
        "engine_cold_batch"
    };
    let rendered: Vec<String> = times_ms.iter().map(|t| format!("{t:.1}")).collect();
    println!(
        "{{\"probe\":\"{probe}\",\"pattern_policies\":{pattern_policies},\
         \"verified\":{},\"refuted\":{},\"unknown\":{},\"samples\":{samples},\
         \"samples_ms\":[{}],\"median_ms\":{median:.1},\"threshold_ms\":{},\"pass\":{}}}",
        expected.0,
        expected.1,
        expected.2,
        rendered.join(","),
        threshold_ms.map_or("null".to_string(), |t| format!("{t:.1}")),
        pass.map_or("null".to_string(), |p| p.to_string()),
    );
    if pass == Some(false) {
        std::process::exit(1);
    }
}
