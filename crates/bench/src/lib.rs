//! Criterion benchmark crate (benches are under `benches/`).
