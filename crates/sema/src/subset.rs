//! Helpers for carving sub-scopes out of a program.
//!
//! The modular-soundness experiments (E7 in `DESIGN.md`) need scopes `D ⊆ E`
//! where both satisfy the rule of self-contained names. [`subset_program`]
//! selects declarations by index; [`closure_for_impl`] computes the least
//! self-contained declaration set containing a given implementation — the
//! natural "scope of the module that declares it".

use oolong_syntax::{Cmd, Decl, Expr, Program};
use std::collections::{BTreeSet, HashMap};

/// Returns a new program containing exactly the declarations of `program`
/// whose indices appear in `keep` (order preserved, duplicates ignored).
///
/// Programs using the `module` extension should be
/// [`flatten`](crate::modules::flatten)ed first; indices refer to the
/// top-level declaration list.
pub fn subset_program(program: &Program, keep: &[usize]) -> Program {
    let set: BTreeSet<usize> = keep
        .iter()
        .copied()
        .filter(|&i| i < program.decls.len())
        .collect();
    Program {
        decls: set.iter().map(|&i| program.decls[i].clone()).collect(),
    }
}

/// Computes the indices of the least self-contained subset of `program`'s
/// declarations that contains declaration `root` (typically an `impl`).
///
/// The closure pulls in: the `proc` declaration for every `impl` and every
/// called procedure; every attribute named anywhere in the kept
/// declarations (bodies, modifies lists, `in` and `maps into` clauses);
/// and iterates until fixpoint. Note that *other* implementations of the
/// procedures involved are **not** pulled in — a scope needs callees'
/// declarations, not their bodies, which is the whole point of modular
/// checking.
pub fn closure_for_impl(program: &Program, root: usize) -> Vec<usize> {
    let mut attr_decl: HashMap<&str, usize> = HashMap::new();
    let mut proc_decl: HashMap<&str, usize> = HashMap::new();
    for (i, d) in program.decls.iter().enumerate() {
        match d {
            Decl::Group(g) => {
                attr_decl.entry(g.name.as_str()).or_insert(i);
            }
            Decl::Field(f) => {
                attr_decl.entry(f.name.as_str()).or_insert(i);
            }
            Decl::Proc(p) => {
                proc_decl.entry(p.name.as_str()).or_insert(i);
            }
            Decl::Impl(_) | Decl::Module(_) | Decl::Invariant(_) => {}
        }
    }

    let mut kept: BTreeSet<usize> = BTreeSet::new();
    let mut queue = vec![root];
    // Invariants constrain every object, so every closure keeps all of
    // them (and, transitively, the attributes they mention) — otherwise a
    // subset would drop invariant obligations and verify differently.
    for (i, d) in program.decls.iter().enumerate() {
        if matches!(d, Decl::Invariant(_)) {
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        if i >= program.decls.len() || !kept.insert(i) {
            continue;
        }
        let need_attr = |name: &str, queue: &mut Vec<usize>| {
            if let Some(&j) = attr_decl.get(name) {
                queue.push(j);
            }
        };
        match &program.decls[i] {
            Decl::Group(g) => {
                for inc in &g.includes {
                    need_attr(inc.as_str(), &mut queue);
                }
            }
            Decl::Field(f) => {
                for inc in &f.includes {
                    need_attr(inc.as_str(), &mut queue);
                }
                for m in &f.maps {
                    need_attr(m.mapped.as_str(), &mut queue);
                    for into in &m.into {
                        need_attr(into.as_str(), &mut queue);
                    }
                }
            }
            Decl::Proc(p) => {
                for e in &p.modifies {
                    collect_expr_attrs(e, &mut |a| need_attr(a, &mut queue));
                }
                for e in p.reads.iter().flatten() {
                    collect_expr_attrs(e, &mut |a| need_attr(a, &mut queue));
                }
            }
            Decl::Invariant(v) => {
                collect_expr_attrs(&v.expr, &mut |a| need_attr(a, &mut queue));
            }
            Decl::Impl(im) => {
                if let Some(&j) = proc_decl.get(im.name.as_str()) {
                    queue.push(j);
                }
                let mut attr_names = Vec::new();
                let mut proc_names = Vec::new();
                collect_cmd_names(
                    &im.body,
                    &mut |a| attr_names.push(a.to_string()),
                    &mut |p| proc_names.push(p.to_string()),
                );
                for a in &attr_names {
                    need_attr(a, &mut queue);
                }
                for p in &proc_names {
                    if let Some(&j) = proc_decl.get(p.as_str()) {
                        queue.push(j);
                    }
                }
            }
            // Opaque in the flat view; flatten before computing closures.
            Decl::Module(_) => {}
        }
    }
    kept.into_iter().collect()
}

fn collect_expr_attrs(expr: &Expr, on_attr: &mut impl FnMut(&str)) {
    expr.walk(&mut |e| {
        if let Expr::Select { attr, .. } = e {
            on_attr(attr.as_str());
        }
    });
}

fn collect_cmd_names(cmd: &Cmd, on_attr: &mut impl FnMut(&str), on_proc: &mut impl FnMut(&str)) {
    cmd.walk(&mut |c| match c {
        Cmd::Assert(e, _) | Cmd::Assume(e, _) => collect_expr_attrs(e, on_attr),
        Cmd::Assign { lhs, rhs, .. } => {
            collect_expr_attrs(lhs, on_attr);
            collect_expr_attrs(rhs, on_attr);
        }
        Cmd::AssignNew { lhs, .. } => collect_expr_attrs(lhs, on_attr),
        Cmd::Call { proc, args, .. } => {
            on_proc(proc.as_str());
            for a in args {
                collect_expr_attrs(a, on_attr);
            }
        }
        Cmd::If { cond, .. } => collect_expr_attrs(cond, on_attr),
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::Scope;
    use oolong_syntax::parse_program;

    const STACK: &str = "group contents
group elems
field cnt in elems
field obj
proc push(st, o) modifies st.contents
proc m(st, r) modifies r.obj
proc q()
impl q() {
  var st in var result in var v in var n in
    st := new() ; result := new() ; m(st, result) ;
    v := result.obj ; n := v.cnt ; push(st, 3) ;
    assert n = v.cnt
  end end end end
}
field vec maps elems into contents
impl m(st, r) { r.obj := st.vec }";

    #[test]
    fn subset_preserves_order() {
        let p = parse_program(STACK).unwrap();
        let sub = subset_program(&p, &[4, 0, 0, 2]);
        assert_eq!(sub.decls.len(), 3);
        assert!(matches!(&sub.decls[0], Decl::Group(g) if g.name.text == "contents"));
        assert!(matches!(&sub.decls[2], Decl::Proc(_)));
    }

    #[test]
    fn closure_of_q_impl_excludes_vec() {
        let p = parse_program(STACK).unwrap();
        // decl 7 is `impl q`.
        let keep = closure_for_impl(&p, 7);
        let sub = subset_program(&p, &keep);
        let scope = Scope::analyze(&sub).expect("closure is self-contained");
        assert!(scope.attr("cnt").is_some());
        assert!(scope.attr("obj").is_some());
        assert!(scope.proc("push").is_some());
        // The pivot declaration and `impl m` are NOT part of q's scope.
        assert!(scope.attr("vec").is_none());
        assert_eq!(scope.impls().count(), 1);
    }

    #[test]
    fn closure_of_m_impl_includes_vec() {
        let p = parse_program(STACK).unwrap();
        // decl 9 is `impl m`.
        let keep = closure_for_impl(&p, 9);
        let sub = subset_program(&p, &keep);
        let scope = Scope::analyze(&sub).expect("closure is self-contained");
        assert!(scope.attr("vec").is_some());
        assert!(scope.attr("contents").is_some(), "maps target pulled in");
        assert!(scope.attr("elems").is_some(), "mapped attr pulled in");
    }

    #[test]
    fn every_impl_closure_is_self_contained() {
        let p = parse_program(STACK).unwrap();
        for (i, d) in p.decls.iter().enumerate() {
            if matches!(d, Decl::Impl(_)) {
                let sub = subset_program(&p, &closure_for_impl(&p, i));
                Scope::analyze(&sub).expect("closure analyses cleanly");
            }
        }
    }
}
