//! Symbol identifiers and per-declaration semantic records.

use oolong_syntax::{Cmd, Expr, Span};
use std::fmt;

/// Identifier of a declared attribute (data group or object field) within a
/// [`Scope`](crate::Scope). Indices are dense and scope-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The dense index of this attribute.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

/// Identifier of a declared procedure within a [`Scope`](crate::Scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The dense index of this procedure.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Identifier of a procedure implementation within a
/// [`Scope`](crate::Scope). One procedure may have many implementations;
/// calls dispatch to an arbitrary one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImplId(pub u32);

impl ImplId {
    /// The dense index of this implementation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ImplId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "impl#{}", self.0)
    }
}

/// Whether an attribute is a data group or an object field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Declared with `group`.
    Group,
    /// Declared with `field`.
    Field,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrKind::Group => write!(f, "group"),
            AttrKind::Field => write!(f, "field"),
        }
    }
}

/// A resolved `maps b into a1, …, an` clause: the rep inclusions
/// `a1 →f b`, …, `an →f b` for the declaring pivot field `f`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepClause {
    /// The mapped attribute `b` of the referenced object.
    pub mapped: AttrId,
    /// The enclosing groups `a1, …, an` the attribute is mapped into.
    pub into: Vec<AttrId>,
    /// `maps elem b into a` (array dependencies): the pivot references an
    /// array; every slot, and attribute `b` of every element, is included.
    pub elementwise: bool,
    /// Source span of the clause.
    pub span: Span,
}

/// Semantic record of a declared attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrInfo {
    /// The attribute's name.
    pub name: String,
    /// Group or field.
    pub kind: AttrKind,
    /// Direct local inclusions from the `in` clause: the groups this
    /// attribute is declared to be in.
    pub includes: Vec<AttrId>,
    /// Rep inclusions from `maps … into …` clauses; non-empty iff the
    /// attribute is a pivot field.
    pub maps: Vec<RepClause>,
    /// Span of the declaration.
    pub span: Span,
}

impl AttrInfo {
    /// Whether this attribute is a pivot field.
    pub fn is_pivot(&self) -> bool {
        !self.maps.is_empty()
    }
}

/// One designator in a modifies list, resolved: `params[param].path…`,
/// where the final element of `path` is the licensed attribute.
///
/// For example `modifies t.c.d.g` with `t` the first formal becomes
/// `{ param: 0, path: [c, d, g] }`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModTarget {
    /// Index of the formal parameter the designator is rooted at.
    pub param: usize,
    /// Attribute path; always non-empty.
    pub path: Vec<AttrId>,
    /// Span of the designator in the `proc` declaration.
    pub span: Span,
}

impl ModTarget {
    /// The licensed attribute: the last element of the path.
    pub fn licensed_attr(&self) -> AttrId {
        *self.path.last().expect("ModTarget path is non-empty")
    }
}

/// Semantic record of a procedure declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcInfo {
    /// The procedure's name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Resolved modifies list.
    pub modifies: Vec<ModTarget>,
    /// Resolved read frame. `None` when the declaration carried no `reads`
    /// clause: the procedure's reads are unconstrained and no read-frame
    /// obligations are generated for its implementations.
    pub reads: Option<Vec<ModTarget>>,
    /// Span of the declaration.
    pub span: Span,
}

/// Semantic record of an `invariant E` declaration: the body over the
/// receiver `this`, with the field attributes it dereferences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantInfo {
    /// The invariant body, exactly as parsed (over `this`).
    pub expr: Expr,
    /// Field attributes the invariant reads, in first-occurrence order.
    /// Sema guarantees each is included in at least one declared data
    /// group (the group-dependency well-formedness rule).
    pub attrs: Vec<AttrId>,
    /// Span of the declaration.
    pub span: Span,
}

/// Semantic record of a procedure implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplInfo {
    /// The implemented procedure.
    pub proc: ProcId,
    /// The body, exactly as parsed (desugar with [`Cmd::desugared`] when
    /// translating).
    pub body: Cmd,
    /// Span of the declaration.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_distinctly() {
        assert_eq!(AttrId(3).to_string(), "attr#3");
        assert_eq!(ProcId(3).to_string(), "proc#3");
        assert_eq!(ImplId(0).to_string(), "impl#0");
    }

    #[test]
    fn licensed_attr_is_last_path_element() {
        let t = ModTarget {
            param: 0,
            path: vec![AttrId(1), AttrId(2)],
            span: Span::DUMMY,
        };
        assert_eq!(t.licensed_attr(), AttrId(2));
    }
}
