//! Scope analysis: building semantic records from a set of declarations.
//!
//! A *scope* in the paper's sense is a set of declarations satisfying the
//! rule of **self-contained names**: every attribute and procedure referred
//! to in the scope is also declared in the scope. [`Scope::analyze`]
//! enforces exactly this (plus well-formedness of the inclusion clauses)
//! and produces the resolved symbol tables the checker builds its
//! scope-dependent background predicate from.

use crate::resolve::validate_impl;
use crate::symbols::*;
use oolong_syntax::{Decl, Diagnostics, Expr, Program, Span};
use std::collections::HashMap;

/// A fully analysed scope: resolved attributes, procedures, and
/// implementations, with the local (`in`) and rep (`maps into`) inclusion
/// graphs.
#[derive(Debug, Clone)]
pub struct Scope {
    attrs: Vec<AttrInfo>,
    procs: Vec<ProcInfo>,
    impls: Vec<ImplInfo>,
    invariants: Vec<InvariantInfo>,
    attr_by_name: HashMap<String, AttrId>,
    proc_by_name: HashMap<String, ProcId>,
    /// Transitive enclosing groups per attribute (excluding the attribute
    /// itself), precomputed at analysis time.
    enclosing: Vec<Vec<AttrId>>,
}

impl Scope {
    /// Analyses a program as a single scope.
    ///
    /// # Errors
    ///
    /// Returns all well-formedness diagnostics: duplicate declarations,
    /// undeclared names (violating self-contained names), `in` targets that
    /// are not groups, inclusion cycles, malformed modifies designators,
    /// implementations without (or disagreeing with) their procedure
    /// declaration, and ill-formed command bodies.
    pub fn analyze(program: &Program) -> Result<Scope, Diagnostics> {
        // Module declarations are scoping structure, not symbols: validate
        // them, then analyse the flattened declaration set (names are
        // globally unique, so flattening is semantics-preserving).
        if crate::modules::has_modules(program) {
            crate::modules::modules(program)?;
            let flat = crate::modules::flatten(program);
            return Scope::analyze(&flat);
        }
        let mut diags = Diagnostics::new();

        // Pass 1: collect attribute and procedure names.
        let mut attrs: Vec<AttrInfo> = Vec::new();
        let mut attr_by_name: HashMap<String, AttrId> = HashMap::new();
        let mut procs: Vec<ProcInfo> = Vec::new();
        let mut proc_by_name: HashMap<String, ProcId> = HashMap::new();

        for decl in &program.decls {
            match decl {
                Decl::Group(g) => {
                    if let Some(&prev) = attr_by_name.get(&g.name.text) {
                        diags.push(
                            oolong_syntax::Diagnostic::error(
                                format!("duplicate attribute `{}`", g.name.text),
                                g.name.span,
                            )
                            .with_note("previously declared here", attrs[prev.index()].span),
                        );
                        continue;
                    }
                    let id = AttrId(attrs.len() as u32);
                    attr_by_name.insert(g.name.text.clone(), id);
                    attrs.push(AttrInfo {
                        name: g.name.text.clone(),
                        kind: AttrKind::Group,
                        includes: Vec::new(),
                        maps: Vec::new(),
                        span: g.span,
                    });
                }
                Decl::Field(f) => {
                    if let Some(&prev) = attr_by_name.get(&f.name.text) {
                        diags.push(
                            oolong_syntax::Diagnostic::error(
                                format!("duplicate attribute `{}`", f.name.text),
                                f.name.span,
                            )
                            .with_note("previously declared here", attrs[prev.index()].span),
                        );
                        continue;
                    }
                    let id = AttrId(attrs.len() as u32);
                    attr_by_name.insert(f.name.text.clone(), id);
                    attrs.push(AttrInfo {
                        name: f.name.text.clone(),
                        kind: AttrKind::Field,
                        includes: Vec::new(),
                        maps: Vec::new(),
                        span: f.span,
                    });
                }
                Decl::Proc(p) => {
                    if let Some(&prev) = proc_by_name.get(&p.name.text) {
                        diags.push(
                            oolong_syntax::Diagnostic::error(
                                format!("duplicate procedure `{}`", p.name.text),
                                p.name.span,
                            )
                            .with_note("previously declared here", procs[prev.index()].span),
                        );
                        continue;
                    }
                    let mut seen = std::collections::HashSet::new();
                    for param in &p.params {
                        if !seen.insert(param.text.as_str()) {
                            diags
                                .error(format!("duplicate parameter `{}`", param.text), param.span);
                        }
                    }
                    let id = ProcId(procs.len() as u32);
                    proc_by_name.insert(p.name.text.clone(), id);
                    procs.push(ProcInfo {
                        name: p.name.text.clone(),
                        params: p.params.iter().map(|i| i.text.clone()).collect(),
                        modifies: Vec::new(),
                        reads: None,
                        span: p.span,
                    });
                }
                Decl::Impl(_) | Decl::Invariant(_) => {}
                Decl::Module(_) => unreachable!("modules are flattened before analysis"),
            }
        }

        // Pass 2: resolve inclusion clauses and modifies lists.
        let lookup_attr =
            |name: &oolong_syntax::Ident, diags: &mut Diagnostics| -> Option<AttrId> {
                match attr_by_name.get(&name.text) {
                    Some(&id) => Some(id),
                    None => {
                        diags.error(format!("undeclared attribute `{}`", name.text), name.span);
                        None
                    }
                }
            };
        let require_group =
            |id: AttrId, span: Span, attrs: &[AttrInfo], diags: &mut Diagnostics, ctx: &str| {
                if attrs[id.index()].kind != AttrKind::Group {
                    diags.error(
                        format!(
                            "{} `{}` must be a group, but it is a field",
                            ctx,
                            attrs[id.index()].name
                        ),
                        span,
                    );
                }
            };

        for decl in &program.decls {
            match decl {
                Decl::Group(g) => {
                    let Some(&id) = attr_by_name.get(&g.name.text) else {
                        continue;
                    };
                    let mut includes = Vec::new();
                    for target in &g.includes {
                        if let Some(tid) = lookup_attr(target, &mut diags) {
                            require_group(tid, target.span, &attrs, &mut diags, "`in` target");
                            includes.push(tid);
                        }
                    }
                    attrs[id.index()].includes = includes;
                }
                Decl::Field(f) => {
                    let Some(&id) = attr_by_name.get(&f.name.text) else {
                        continue;
                    };
                    let mut includes = Vec::new();
                    for target in &f.includes {
                        if let Some(tid) = lookup_attr(target, &mut diags) {
                            require_group(tid, target.span, &attrs, &mut diags, "`in` target");
                            includes.push(tid);
                        }
                    }
                    let mut maps = Vec::new();
                    for clause in &f.maps {
                        let Some(mapped) = lookup_attr(&clause.mapped, &mut diags) else {
                            continue;
                        };
                        let mut into = Vec::new();
                        for target in &clause.into {
                            if let Some(tid) = lookup_attr(target, &mut diags) {
                                require_group(
                                    tid,
                                    target.span,
                                    &attrs,
                                    &mut diags,
                                    "`maps into` target",
                                );
                                into.push(tid);
                            }
                        }
                        maps.push(RepClause {
                            mapped,
                            into,
                            elementwise: clause.elementwise,
                            span: clause.span,
                        });
                    }
                    attrs[id.index()].includes = includes;
                    attrs[id.index()].maps = maps;
                }
                Decl::Proc(p) => {
                    let Some(&id) = proc_by_name.get(&p.name.text) else {
                        continue;
                    };
                    let params = procs[id.index()].params.clone();
                    let mut modifies = Vec::new();
                    for entry in &p.modifies {
                        if let Some(target) = resolve_frame_target(
                            entry,
                            "modifies",
                            &params,
                            &attr_by_name,
                            &attrs,
                            &mut diags,
                        ) {
                            modifies.push(target);
                        }
                    }
                    procs[id.index()].modifies = modifies;
                    if let Some(entries) = &p.reads {
                        let mut reads = Vec::new();
                        for entry in entries {
                            if let Some(target) = resolve_frame_target(
                                entry,
                                "reads",
                                &params,
                                &attr_by_name,
                                &attrs,
                                &mut diags,
                            ) {
                                reads.push(target);
                            }
                        }
                        procs[id.index()].reads = Some(reads);
                    }
                }
                Decl::Impl(_) | Decl::Invariant(_) => {}
                Decl::Module(_) => unreachable!("modules are flattened before analysis"),
            }
        }

        // Pass 3: inclusion-graph acyclicity ("these inclusions are not
        // allowed to form a cycle", Section 2).
        check_inclusion_acyclic(&attrs, &mut diags);

        // Pass 4: implementations.
        let mut impls = Vec::new();
        for decl in &program.decls {
            let Decl::Impl(i) = decl else { continue };
            let Some(&pid) = proc_by_name.get(&i.name.text) else {
                diags.error(
                    format!("implementation of undeclared procedure `{}`", i.name.text),
                    i.name.span,
                );
                continue;
            };
            let declared = &procs[pid.index()].params;
            let given: Vec<String> = i.params.iter().map(|p| p.text.clone()).collect();
            if declared != &given {
                diags.push(
                    oolong_syntax::Diagnostic::error(
                        format!(
                            "implementation parameters ({}) differ from procedure declaration ({})",
                            given.join(", "),
                            declared.join(", ")
                        ),
                        i.span,
                    )
                    .with_note("procedure declared here", procs[pid.index()].span),
                );
                continue;
            }
            impls.push(ImplInfo {
                proc: pid,
                body: i.body.clone(),
                span: i.span,
            });
        }

        let enclosing = compute_enclosing(&attrs);

        // Pass 4.5: invariants. The body is an expression over the
        // distinguished receiver `this`; every attribute it dereferences
        // must be a field included in at least one declared data group
        // (the group-dependency well-formedness rule: an invariant may
        // depend only on locations reachable through the object's groups,
        // so that `modifies`/`reads` framing covers it).
        let mut invariants = Vec::new();
        for decl in &program.decls {
            let Decl::Invariant(v) = decl else { continue };
            if let Some(info) = resolve_invariant(v, &attr_by_name, &attrs, &enclosing, &mut diags)
            {
                invariants.push(info);
            }
        }

        let scope = Scope {
            attrs,
            procs,
            impls,
            invariants,
            attr_by_name,
            proc_by_name,
            enclosing,
        };

        // Pass 5: validate implementation bodies (self-contained names,
        // binding structure, command well-formedness).
        for impl_id in 0..scope.impls.len() {
            validate_impl(&scope, ImplId(impl_id as u32), &mut diags);
        }

        if diags.has_errors() {
            Err(diags)
        } else {
            Ok(scope)
        }
    }

    // ----------------------------------------------------------- accessors

    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// The semantic record for an attribute.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this scope.
    pub fn attr_info(&self, id: AttrId) -> &AttrInfo {
        &self.attrs[id.index()]
    }

    /// Iterates over all attributes with their ids.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &AttrInfo)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u32), a))
    }

    /// Number of declared attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Looks up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<ProcId> {
        self.proc_by_name.get(name).copied()
    }

    /// The semantic record for a procedure.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this scope.
    pub fn proc_info(&self, id: ProcId) -> &ProcInfo {
        &self.procs[id.index()]
    }

    /// Iterates over all procedures with their ids.
    pub fn procs(&self) -> impl Iterator<Item = (ProcId, &ProcInfo)> {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId(i as u32), p))
    }

    /// The semantic record for an implementation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this scope.
    pub fn impl_info(&self, id: ImplId) -> &ImplInfo {
        &self.impls[id.index()]
    }

    /// Iterates over all implementations with their ids.
    pub fn impls(&self) -> impl Iterator<Item = (ImplId, &ImplInfo)> {
        self.impls
            .iter()
            .enumerate()
            .map(|(i, im)| (ImplId(i as u32), im))
    }

    /// The implementations of a given procedure.
    pub fn impls_of(&self, proc: ProcId) -> impl Iterator<Item = (ImplId, &ImplInfo)> {
        self.impls().filter(move |(_, im)| im.proc == proc)
    }

    /// The resolved object invariants declared in this scope, in source
    /// order.
    pub fn invariants(&self) -> &[InvariantInfo] {
        &self.invariants
    }

    /// Whether the scope declares any object invariants.
    pub fn has_invariants(&self) -> bool {
        !self.invariants.is_empty()
    }

    /// Whether any procedure in the scope declares a read frame.
    pub fn has_read_frames(&self) -> bool {
        self.procs.iter().any(|p| p.reads.is_some())
    }

    // ----------------------------------------------------------- inclusion

    /// Whether `id` is a pivot field.
    pub fn is_pivot(&self, id: AttrId) -> bool {
        self.attrs[id.index()].is_pivot()
    }

    /// All groups that directly or indirectly include `id` (via `in`
    /// clauses), excluding `id` itself. This is the set `g1, …, gn` of the
    /// scope-dependent background axiom for `⊒` (Section 4.2).
    pub fn enclosing_groups(&self, id: AttrId) -> &[AttrId] {
        &self.enclosing[id.index()]
    }

    /// The reflexive-transitive local inclusion relation `a ⊒ b`:
    /// "group `a` (transitively) includes attribute `b`", or `a = b`.
    pub fn local_includes(&self, a: AttrId, b: AttrId) -> bool {
        a == b || self.enclosing[b.index()].contains(&a)
    }

    /// All ordinary rep inclusions `(a, f, b)` declared in this scope,
    /// meaning `a →f b`: pivot field `f` was declared with `maps b into a`.
    pub fn rep_triples(&self) -> Vec<(AttrId, AttrId, AttrId)> {
        self.triples_filtered(false)
    }

    /// All *elementwise* rep inclusions `(a, f, b)` declared in this scope,
    /// meaning `a ⇉f b`: pivot field `f` was declared with
    /// `maps elem b into a` (array dependencies).
    pub fn rep_elem_triples(&self) -> Vec<(AttrId, AttrId, AttrId)> {
        self.triples_filtered(true)
    }

    fn triples_filtered(&self, elementwise: bool) -> Vec<(AttrId, AttrId, AttrId)> {
        let mut triples = Vec::new();
        for (fid, info) in self.attrs() {
            for clause in &info.maps {
                if clause.elementwise != elementwise {
                    continue;
                }
                for &into in &clause.into {
                    triples.push((into, fid, clause.mapped));
                }
            }
        }
        triples
    }

    /// The attributes `b1, …, bn` mapped by pivot `f` (axiom (8)), for
    /// ordinary (`elementwise == false`) or elementwise clauses.
    pub fn mapped_attrs_kind(&self, f: AttrId, elementwise: bool) -> Vec<AttrId> {
        let mut out: Vec<AttrId> = self.attrs[f.index()]
            .maps
            .iter()
            .filter(|c| c.elementwise == elementwise)
            .map(|c| c.mapped)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The attributes mapped by ordinary `maps` clauses of pivot `f`.
    pub fn mapped_attrs(&self, f: AttrId) -> Vec<AttrId> {
        self.mapped_attrs_kind(f, false)
    }

    /// The groups `a1, …, an` that `f` maps `b` into (axiom (9)), for
    /// ordinary or elementwise clauses.
    pub fn mappers_kind(&self, f: AttrId, b: AttrId, elementwise: bool) -> Vec<AttrId> {
        let mut out = Vec::new();
        for clause in &self.attrs[f.index()].maps {
            if clause.elementwise == elementwise && clause.mapped == b {
                out.extend(clause.into.iter().copied());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The groups that ordinary `maps` clauses of `f` map `b` into.
    pub fn mappers(&self, f: AttrId, b: AttrId) -> Vec<AttrId> {
        self.mappers_kind(f, b, false)
    }

    /// All pivot fields declared in this scope.
    pub fn pivots(&self) -> Vec<AttrId> {
        self.attrs()
            .filter(|(_, a)| a.is_pivot())
            .map(|(id, _)| id)
            .collect()
    }
}

/// Resolves one frame designator `t.a1.….an` (n ≥ 1) from a `modifies` or
/// `reads` list: the root must be a formal parameter, intermediate path
/// elements must be fields, and the final element may be a field or a
/// group.
fn resolve_frame_target(
    entry: &Expr,
    what: &str,
    params: &[String],
    attr_by_name: &HashMap<String, AttrId>,
    attrs: &[AttrInfo],
    diags: &mut Diagnostics,
) -> Option<ModTarget> {
    let Some((root, path)) = entry.as_designator_chain() else {
        diags.error(
            format!("{what} entry must be a designator expression `t.a1.….an`"),
            entry.span(),
        );
        return None;
    };
    let Some(param) = params.iter().position(|p| p == &root.text) else {
        diags.error(
            format!(
                "{what} designator must be rooted at a formal parameter, but `{}` is not one",
                root.text
            ),
            root.span,
        );
        return None;
    };
    if path.is_empty() {
        diags.error(
            format!("{what} entry must name at least one attribute (`t` alone grants no license)"),
            entry.span(),
        );
        return None;
    }
    let mut ids = Vec::with_capacity(path.len());
    for (i, seg) in path.iter().enumerate() {
        let Some(&id) = attr_by_name.get(&seg.text) else {
            diags.error(format!("undeclared attribute `{}`", seg.text), seg.span);
            return None;
        };
        let is_last = i + 1 == path.len();
        if !is_last && attrs[id.index()].kind != AttrKind::Field {
            diags.error(
                format!(
                    "`{}` is a group and cannot be dereferenced in a {what} designator",
                    seg.text
                ),
                seg.span,
            );
            return None;
        }
        ids.push(id);
    }
    Some(ModTarget {
        param,
        path: ids,
        span: entry.span(),
    })
}

/// Resolves one `invariant E` declaration. The body may mention only the
/// receiver `this`; every dereferenced attribute must be a declared
/// *field* that is included in at least one data group, so the invariant's
/// footprint is expressible through the object's declared groups.
fn resolve_invariant(
    decl: &oolong_syntax::InvariantDecl,
    attr_by_name: &HashMap<String, AttrId>,
    attrs: &[AttrInfo],
    enclosing: &[Vec<AttrId>],
    diags: &mut Diagnostics,
) -> Option<InvariantInfo> {
    let before = diags.len();
    let mut read_attrs: Vec<AttrId> = Vec::new();
    decl.expr.walk(&mut |e| match e {
        Expr::Id(id) if id.text != "this" => {
            diags.error(
                format!(
                    "invariant may only mention the receiver `this`, found `{}`",
                    id.text
                ),
                id.span,
            );
        }
        Expr::Select { attr, .. } => match attr_by_name.get(&attr.text) {
            None => {
                diags.error(format!("undeclared attribute `{}`", attr.text), attr.span);
            }
            Some(&id) => {
                if attrs[id.index()].kind != AttrKind::Field {
                    diags.error(
                        format!(
                            "data group `{}` cannot appear in an invariant body (groups exist only in frames)",
                            attr.text
                        ),
                        attr.span,
                    );
                } else if enclosing[id.index()].is_empty() {
                    diags.error(
                        format!(
                            "invariant depends on `{}`, which is not included in any declared data group",
                            attr.text
                        ),
                        attr.span,
                    );
                } else if !read_attrs.contains(&id) {
                    read_attrs.push(id);
                }
            }
        },
        _ => {}
    });
    if diags.len() > before {
        return None;
    }
    Some(InvariantInfo {
        expr: decl.expr.clone(),
        attrs: read_attrs,
        span: decl.span,
    })
}

/// Detects cycles in the `in` graph, reporting one diagnostic per cycle
/// found.
fn check_inclusion_acyclic(attrs: &[AttrInfo], diags: &mut Diagnostics) {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; attrs.len()];

    fn visit(
        node: usize,
        attrs: &[AttrInfo],
        marks: &mut [Mark],
        stack: &mut Vec<usize>,
        diags: &mut Diagnostics,
    ) {
        marks[node] = Mark::Grey;
        stack.push(node);
        for target in attrs[node].includes.iter() {
            let t = target.index();
            match marks[t] {
                Mark::White => visit(t, attrs, marks, stack, diags),
                Mark::Grey => {
                    let pos = stack.iter().position(|&n| n == t).unwrap_or(0);
                    let cycle: Vec<&str> = stack[pos..]
                        .iter()
                        .map(|&n| attrs[n].name.as_str())
                        .collect();
                    diags.error(
                        format!(
                            "`in` inclusions form a cycle: {} -> {}",
                            cycle.join(" -> "),
                            attrs[t].name
                        ),
                        attrs[node].span,
                    );
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        marks[node] = Mark::Black;
    }

    let mut stack = Vec::new();
    for node in 0..attrs.len() {
        if marks[node] == Mark::White {
            visit(node, attrs, &mut marks, &mut stack, diags);
        }
    }
}

/// Computes, per attribute, the set of groups transitively enclosing it.
fn compute_enclosing(attrs: &[AttrInfo]) -> Vec<Vec<AttrId>> {
    let n = attrs.len();
    let mut enclosing = vec![Vec::new(); n];
    for start in 0..n {
        let mut seen = vec![false; n];
        let mut queue: Vec<usize> = attrs[start].includes.iter().map(|a| a.index()).collect();
        while let Some(g) = queue.pop() {
            if seen[g] {
                continue;
            }
            seen[g] = true;
            queue.extend(attrs[g].includes.iter().map(|a| a.index()));
        }
        enclosing[start] = (0..n)
            .filter(|&i| seen[i])
            .map(|i| AttrId(i as u32))
            .collect();
    }
    enclosing
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_syntax::parse_program;

    fn analyze(src: &str) -> Result<Scope, Diagnostics> {
        Scope::analyze(&parse_program(src).expect("parses"))
    }

    #[test]
    fn stack_vector_scope_resolves() {
        let scope = analyze(
            "group contents
             group elems
             field cnt in elems
             field vec maps elems into contents
             proc push(s, o) modifies s.contents",
        )
        .expect("analyses");
        let contents = scope.attr("contents").unwrap();
        let elems = scope.attr("elems").unwrap();
        let cnt = scope.attr("cnt").unwrap();
        let vec = scope.attr("vec").unwrap();
        assert!(scope.is_pivot(vec));
        assert!(!scope.is_pivot(cnt));
        assert_eq!(scope.enclosing_groups(cnt), &[elems]);
        assert!(scope.local_includes(elems, cnt));
        assert!(scope.local_includes(cnt, cnt));
        assert!(!scope.local_includes(cnt, elems));
        assert_eq!(scope.rep_triples(), vec![(contents, vec, elems)]);
        assert_eq!(scope.mapped_attrs(vec), vec![elems]);
        assert_eq!(scope.mappers(vec, elems), vec![contents]);
        let push = scope.proc("push").unwrap();
        let info = scope.proc_info(push);
        assert_eq!(info.modifies.len(), 1);
        assert_eq!(info.modifies[0].param, 0);
        assert_eq!(info.modifies[0].licensed_attr(), contents);
    }

    #[test]
    fn transitive_enclosing_groups() {
        let scope = analyze(
            "group a
             group b in a
             field f in b",
        )
        .expect("analyses");
        let a = scope.attr("a").unwrap();
        let b = scope.attr("b").unwrap();
        let f = scope.attr("f").unwrap();
        let mut enc = scope.enclosing_groups(f).to_vec();
        enc.sort();
        assert_eq!(enc, vec![a, b]);
        assert!(scope.local_includes(a, f));
        assert!(scope.local_includes(b, f));
        assert!(!scope.local_includes(f, a));
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let err = analyze("group g field g").unwrap_err();
        assert!(err.to_string().contains("duplicate attribute"));
    }

    #[test]
    fn rejects_in_target_that_is_a_field() {
        let err = analyze("field f field g in f").unwrap_err();
        assert!(err.to_string().contains("must be a group"));
    }

    #[test]
    fn rejects_undeclared_in_target() {
        let err = analyze("group g in missing").unwrap_err();
        assert!(err.to_string().contains("undeclared attribute"));
    }

    #[test]
    fn rejects_inclusion_cycle() {
        let err = analyze("group a in b group b in a").unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn self_inclusion_is_a_cycle() {
        let err = analyze("group a in a").unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn maps_into_target_must_be_group() {
        let err = analyze("field cnt field vec maps cnt into vec").unwrap_err();
        assert!(err.to_string().contains("must be a group"));
    }

    #[test]
    fn elementwise_triples_are_separated() {
        let scope = analyze(
            "group g
             group h
             field x
             field arr maps elem x into g maps h into g",
        )
        .expect("analyses");
        let g = scope.attr("g").unwrap();
        let h = scope.attr("h").unwrap();
        let x = scope.attr("x").unwrap();
        let arr = scope.attr("arr").unwrap();
        assert_eq!(scope.rep_triples(), vec![(g, arr, h)]);
        assert_eq!(scope.rep_elem_triples(), vec![(g, arr, x)]);
        assert_eq!(scope.mapped_attrs(arr), vec![h]);
        assert_eq!(scope.mapped_attrs_kind(arr, true), vec![x]);
        assert_eq!(scope.mappers_kind(arr, x, true), vec![g]);
        assert!(scope.is_pivot(arr));
    }

    #[test]
    fn mapped_attribute_may_be_group() {
        // `field next maps g into g` (the paper's linked-list example).
        let scope = analyze("group g field value in g field next maps g into g").expect("analyses");
        let g = scope.attr("g").unwrap();
        let next = scope.attr("next").unwrap();
        assert_eq!(scope.rep_triples(), vec![(g, next, g)]);
    }

    #[test]
    fn modifies_must_be_rooted_at_parameter() {
        let err = analyze("group g proc p(t) modifies u.g").unwrap_err();
        assert!(err.to_string().contains("formal parameter"));
    }

    #[test]
    fn modifies_path_through_group_rejected() {
        let err = analyze("group g group h proc p(t) modifies t.g.h").unwrap_err();
        assert!(err.to_string().contains("cannot be dereferenced"));
    }

    #[test]
    fn modifies_long_chain_resolves() {
        let scope =
            analyze("field c field d group g proc p(t) modifies t.c.d.g").expect("analyses");
        let p = scope.proc("p").unwrap();
        let target = &scope.proc_info(p).modifies[0];
        assert_eq!(target.path.len(), 3);
        assert_eq!(target.licensed_attr(), scope.attr("g").unwrap());
    }

    #[test]
    fn modifies_bare_parameter_rejected() {
        let err = analyze("proc p(t) modifies t").unwrap_err();
        assert!(err.to_string().contains("at least one attribute"));
    }

    #[test]
    fn impl_requires_proc_declaration() {
        let err = analyze("impl p() { skip }").unwrap_err();
        assert!(err.to_string().contains("undeclared procedure"));
    }

    #[test]
    fn impl_parameters_must_match_declaration() {
        let err = analyze("proc p(t, u) impl p(t) { skip }").unwrap_err();
        assert!(err
            .to_string()
            .contains("differ from procedure declaration"));
    }

    #[test]
    fn multiple_impls_allowed() {
        let scope = analyze("proc p(t) impl p(t) { skip } impl p(t) { skip }").expect("analyses");
        let p = scope.proc("p").unwrap();
        assert_eq!(scope.impls_of(p).count(), 2);
    }

    #[test]
    fn duplicate_parameter_rejected() {
        let err = analyze("proc p(t, t)").unwrap_err();
        assert!(err.to_string().contains("duplicate parameter"));
    }

    #[test]
    fn reads_clause_resolves_like_modifies() {
        let scope = analyze(
            "group value
             field num in value
             proc peek(r) reads r.value
             proc free(r)",
        )
        .expect("analyses");
        let peek = scope.proc("peek").unwrap();
        let info = scope.proc_info(peek);
        let reads = info.reads.as_ref().expect("declared read frame");
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].param, 0);
        assert_eq!(reads[0].licensed_attr(), scope.attr("value").unwrap());
        // A missing clause stays `None`: unconstrained, not empty.
        let free = scope.proc("free").unwrap();
        assert!(scope.proc_info(free).reads.is_none());
        assert!(scope.has_read_frames());
    }

    #[test]
    fn reads_designator_errors_name_reads() {
        let err = analyze("group g proc p(t) reads u.g").unwrap_err();
        assert!(err.to_string().contains("reads designator"));
        let err = analyze("proc p(t) reads t").unwrap_err();
        assert!(err.to_string().contains("reads entry"));
    }

    #[test]
    fn invariant_over_grouped_field_resolves() {
        let scope = analyze(
            "group value
             field num in value
             invariant this.num >= 0",
        )
        .expect("analyses");
        assert!(scope.has_invariants());
        let invs = scope.invariants();
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].attrs, vec![scope.attr("num").unwrap()]);
    }

    #[test]
    fn invariant_over_ungrouped_field_rejected() {
        let err = analyze(
            "group value
             field num
             invariant this.num >= 0",
        )
        .unwrap_err();
        assert!(err
            .to_string()
            .contains("not included in any declared data group"));
    }

    #[test]
    fn invariant_may_only_mention_this() {
        let err = analyze(
            "group g
             field f in g
             invariant other.f = 0",
        )
        .unwrap_err();
        assert!(err.to_string().contains("receiver `this`"));
    }

    #[test]
    fn invariant_over_group_rejected() {
        let err = analyze("group g invariant this.g = 0").unwrap_err();
        assert!(err.to_string().contains("groups exist only in frames"));
    }

    #[test]
    fn invariant_diagnostic_carries_segment_span() {
        let src = "group value\nfield num\ninvariant this.num >= 0";
        let err = Scope::analyze(&parse_program(src).expect("parses")).unwrap_err();
        let diag = err.iter().next().expect("one diagnostic");
        assert_eq!(diag.span.snippet(src), "num");
    }
}
