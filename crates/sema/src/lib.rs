//! Semantic analysis for oolong programs.
//!
//! A [`Scope`] is the paper's unit of modular checking: a set of
//! declarations satisfying the rule of *self-contained names* (every name
//! referred to is declared). [`Scope::analyze`] validates a program and
//! resolves its inclusion structure:
//!
//! * **local inclusions** (`in` clauses) — the reflexive-transitive
//!   relation `a ⊒ b` queried via [`Scope::local_includes`] and the
//!   per-attribute enclosing-group sets of [`Scope::enclosing_groups`];
//! * **rep inclusions** (`maps … into …` clauses) — the relation
//!   `a →f b` enumerated by [`Scope::rep_triples`], with
//!   [`Scope::mapped_attrs`] and [`Scope::mappers`] giving the two
//!   scope-dependent axiom shapes (8) and (9) of the paper.
//!
//! # Example
//!
//! ```
//! use oolong_sema::Scope;
//! use oolong_syntax::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "group contents
//!      group elems
//!      field vec maps elems into contents",
//! )?;
//! let scope = Scope::analyze(&program)?;
//! let vec = scope.attr("vec").unwrap();
//! assert!(scope.is_pivot(vec));
//! # Ok(())
//! # }
//! ```

pub mod modules;
pub mod resolve;
pub mod scope;
pub mod subset;
pub mod symbols;

pub use modules::{flatten, has_modules, visible_program, ModuleInfo};
pub use scope::Scope;
pub use subset::{closure_for_impl, subset_program};
pub use symbols::{
    AttrId, AttrInfo, AttrKind, ImplId, ImplInfo, InvariantInfo, ModTarget, ProcId, ProcInfo,
    RepClause,
};
