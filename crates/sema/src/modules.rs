//! Module resolution (extension).
//!
//! The paper treats a module as "just a set of declarations" and defines a
//! scope as a declaration set satisfying the rule of self-contained names;
//! implementation modules would "typically" be checked in the scope of
//! their own declarations plus the interface modules they transitively
//! import. The `module M imports N { … }` extension makes that structure
//! explicit in the source:
//!
//! * names remain **globally unique** (exactly as in the paper) — modules
//!   partition declarations, they do not namespace them;
//! * [`flatten`] erases module structure for whole-program checking;
//! * [`visible_program`] computes the declaration set a module is checked
//!   against: its own declarations, the declarations of transitively
//!   imported modules, and any top-level (module-less) declarations.

use oolong_syntax::{Decl, Diagnostic, Diagnostics, ModuleDecl, Program};
use std::collections::{BTreeSet, HashMap};

/// Summary of a declared module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleInfo {
    /// The module's name.
    pub name: String,
    /// Direct imports, as written.
    pub imports: Vec<String>,
    /// Number of declarations the module contributes.
    pub decl_count: usize,
}

/// Lists the modules declared in a program, validating the module
/// structure: unique module names, no nested modules, imports resolving to
/// declared modules.
///
/// # Errors
///
/// Returns all structural diagnostics when validation fails.
pub fn modules(program: &Program) -> Result<Vec<ModuleInfo>, Diagnostics> {
    let mut diags = Diagnostics::new();
    let mut seen: HashMap<&str, &ModuleDecl> = HashMap::new();
    let mut infos = Vec::new();
    for decl in &program.decls {
        let Decl::Module(m) = decl else { continue };
        if let Some(prev) = seen.get(m.name.as_str()) {
            diags.push(
                Diagnostic::error(format!("duplicate module `{}`", m.name), m.name.span)
                    .with_note("previously declared here", prev.name.span),
            );
            continue;
        }
        seen.insert(m.name.as_str(), m);
        for inner in &m.decls {
            if let Decl::Module(n) = inner {
                diags.error(
                    format!("nested module `{}` is not supported", n.name),
                    n.name.span,
                );
            }
        }
        infos.push(ModuleInfo {
            name: m.name.text.clone(),
            imports: m.imports.iter().map(|i| i.text.clone()).collect(),
            decl_count: m.decls.len(),
        });
    }
    // Imports must resolve.
    for decl in &program.decls {
        let Decl::Module(m) = decl else { continue };
        for import in &m.imports {
            if !seen.contains_key(import.text.as_str()) {
                diags.error(
                    format!(
                        "module `{}` imports undeclared module `{}`",
                        m.name, import.text
                    ),
                    import.span,
                );
            }
        }
    }
    if diags.has_errors() {
        Err(diags)
    } else {
        Ok(infos)
    }
}

/// Erases module structure: every module's declarations are spliced into
/// the top level, in source order. Since names are globally unique this is
/// semantics-preserving for whole-program analysis.
pub fn flatten(program: &Program) -> Program {
    let mut decls = Vec::new();
    for decl in &program.decls {
        match decl {
            Decl::Module(m) => decls.extend(m.decls.iter().cloned()),
            other => decls.push(other.clone()),
        }
    }
    Program { decls }
}

/// Whether the program declares any modules.
pub fn has_modules(program: &Program) -> bool {
    program.decls.iter().any(|d| matches!(d, Decl::Module(_)))
}

/// The declaration set module `name` is checked against: its own
/// declarations, those of transitively imported modules, and all top-level
/// declarations.
///
/// # Errors
///
/// Returns diagnostics if the module structure is invalid or `name` is not
/// declared.
pub fn visible_program(program: &Program, name: &str) -> Result<Program, Diagnostics> {
    modules(program)?; // validate structure first
    let by_name: HashMap<&str, &ModuleDecl> = program
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Module(m) => Some((m.name.as_str(), m)),
            _ => None,
        })
        .collect();
    if !by_name.contains_key(name) {
        let mut diags = Diagnostics::new();
        diags.error(
            format!("no module named `{name}`"),
            oolong_syntax::Span::DUMMY,
        );
        return Err(diags);
    }
    // Transitive import closure (cycles are harmless: the scope is a set).
    let mut closure: BTreeSet<&str> = BTreeSet::new();
    let mut work = vec![name];
    while let Some(m) = work.pop() {
        if !closure.insert(m) {
            continue;
        }
        for import in &by_name[m].imports {
            work.push(import.text.as_str());
        }
    }
    let mut decls = Vec::new();
    for decl in &program.decls {
        match decl {
            Decl::Module(m) => {
                if closure.contains(m.name.as_str()) {
                    decls.extend(m.decls.iter().cloned());
                }
            }
            other => decls.push(other.clone()),
        }
    }
    Ok(Program { decls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::Scope;
    use oolong_syntax::parse_program;

    const MODULAR: &str = "
module vector_interface {
  group elems
  field cnt in elems
  proc vgrow(v) modifies v.elems
}
module vector_impl imports vector_interface {
  impl vgrow(v) { assume v != null ; v.cnt := v.cnt + 1 }
}
module stack_interface imports vector_interface {
  group contents
  proc push(s, o) modifies s.contents
}
module stack_impl imports stack_interface {
  field vec in contents maps elems into contents
  impl push(s, o) { assume s != null && s.vec != null ; vgrow(s.vec) }
}
";

    #[test]
    fn modules_enumerate_and_validate() {
        let program = parse_program(MODULAR).unwrap();
        let infos = modules(&program).expect("valid structure");
        let names: Vec<_> = infos.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "vector_interface",
                "vector_impl",
                "stack_interface",
                "stack_impl"
            ]
        );
        assert_eq!(infos[1].imports, vec!["vector_interface"]);
    }

    #[test]
    fn flatten_preserves_all_declarations() {
        let program = parse_program(MODULAR).unwrap();
        let flat = flatten(&program);
        assert_eq!(flat.decls.len(), 8);
        Scope::analyze(&flat).expect("flattened program analyses");
    }

    #[test]
    fn visible_program_computes_import_closure() {
        let program = parse_program(MODULAR).unwrap();
        // stack_impl sees its own decls + stack_interface + vector_interface
        // (transitively), but NOT vector_impl.
        let visible = visible_program(&program, "stack_impl").expect("resolves");
        let scope = Scope::analyze(&visible).expect("analyses");
        assert!(scope.attr("vec").is_some());
        assert!(scope.attr("contents").is_some());
        assert!(scope.attr("elems").is_some());
        assert!(scope.proc("vgrow").is_some());
        assert_eq!(scope.impls().count(), 1, "only stack_impl's own impl");
    }

    #[test]
    fn vector_impl_does_not_see_the_stack() {
        let program = parse_program(MODULAR).unwrap();
        let visible = visible_program(&program, "vector_impl").expect("resolves");
        let scope = Scope::analyze(&visible).expect("analyses");
        assert!(scope.attr("contents").is_none());
        assert!(scope.attr("vec").is_none());
    }

    #[test]
    fn unknown_import_is_an_error() {
        let program = parse_program("module a imports ghost { group g }").unwrap();
        let err = modules(&program).unwrap_err();
        assert!(err.to_string().contains("undeclared module `ghost`"));
    }

    #[test]
    fn duplicate_module_is_an_error() {
        let program = parse_program("module a { group g } module a { group h }").unwrap();
        assert!(modules(&program)
            .unwrap_err()
            .to_string()
            .contains("duplicate module"));
    }

    #[test]
    fn nested_module_is_an_error() {
        let program = parse_program("module a { module b { group g } }").unwrap();
        assert!(modules(&program)
            .unwrap_err()
            .to_string()
            .contains("nested module"));
    }

    #[test]
    fn unknown_module_name_is_an_error() {
        let program = parse_program(MODULAR).unwrap();
        assert!(visible_program(&program, "nope").is_err());
    }

    #[test]
    fn import_cycles_are_set_unions() {
        let program = parse_program(
            "module a imports b { group ga }
             module b imports a { group gb }",
        )
        .unwrap();
        let visible = visible_program(&program, "a").expect("cycles are harmless");
        assert_eq!(visible.decls.len(), 2);
    }

    #[test]
    fn top_level_decls_are_visible_everywhere() {
        let program = parse_program(
            "group shared
             module a { field f in shared }",
        )
        .unwrap();
        let visible = visible_program(&program, "a").expect("resolves");
        let scope = Scope::analyze(&visible).expect("analyses");
        assert!(scope.attr("shared").is_some());
    }
}
