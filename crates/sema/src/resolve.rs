//! Validation of implementation bodies.
//!
//! Enforces the rule of self-contained names inside commands (every
//! attribute and procedure mentioned is declared in the scope), the
//! language's binding rules, and the structural restrictions Figure 1
//! implies:
//!
//! * the left operand of an assignment is a local variable or a designator
//!   `E.f` — never a formal parameter or constant;
//! * data groups are not allowed in commands (they exist only for
//!   specifying side effects), so every selected attribute in a command
//!   must be a *field*;
//! * calls pass the declared number of arguments;
//! * local variables do not shadow parameters or other locals (a
//!   simplification relative to the paper, which is silent on shadowing;
//!   shadowed programs can always be alpha-renamed).

use crate::scope::Scope;
use crate::symbols::{AttrKind, ImplId};
use oolong_syntax::{Cmd, Diagnostics, Expr};

/// Validates the body of one implementation, appending diagnostics.
pub fn validate_impl(scope: &Scope, impl_id: ImplId, diags: &mut Diagnostics) {
    let info = scope.impl_info(impl_id);
    let params = &scope.proc_info(info.proc).params;
    let mut env = Env {
        scope,
        params,
        locals: Vec::new(),
        diags,
    };
    env.cmd(&info.body);
}

struct Env<'a> {
    scope: &'a Scope,
    params: &'a [String],
    locals: Vec<String>,
    diags: &'a mut Diagnostics,
}

impl Env<'_> {
    fn is_bound(&self, name: &str) -> bool {
        self.params.iter().any(|p| p == name) || self.locals.iter().any(|l| l == name)
    }

    fn cmd(&mut self, cmd: &Cmd) {
        match cmd {
            Cmd::Assert(e, _) | Cmd::Assume(e, _) => self.expr(e),
            Cmd::Skip(_) => {}
            Cmd::Var(x, body, _) => {
                if self.is_bound(&x.text) {
                    self.diags.error(
                        format!("local variable `{}` shadows an existing binding", x.text),
                        x.span,
                    );
                }
                self.locals.push(x.text.clone());
                self.cmd(body);
                self.locals.pop();
            }
            Cmd::Seq(a, b) | Cmd::Choice(a, b) => {
                self.cmd(a);
                self.cmd(b);
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.expr(cond);
                self.cmd(then_branch);
                self.cmd(else_branch);
            }
            Cmd::Assign { lhs, rhs, .. } => {
                self.lhs(lhs);
                self.expr(rhs);
            }
            Cmd::AssignNew { lhs, .. } => self.lhs(lhs),
            Cmd::Call { proc, args, span } => {
                match self.scope.proc(&proc.text) {
                    None => {
                        self.diags.error(
                            format!("call to undeclared procedure `{}`", proc.text),
                            proc.span,
                        );
                    }
                    Some(pid) => {
                        let declared = self.scope.proc_info(pid).params.len();
                        if declared != args.len() {
                            self.diags.error(
                                format!(
                                    "procedure `{}` expects {} argument(s) but {} were supplied",
                                    proc.text,
                                    declared,
                                    args.len()
                                ),
                                *span,
                            );
                        }
                    }
                }
                for arg in args {
                    self.expr(arg);
                }
            }
        }
    }

    fn lhs(&mut self, lhs: &Expr) {
        match lhs {
            Expr::Id(id) => {
                if self.params.iter().any(|p| p == &id.text) {
                    self.diags.error(
                        format!("cannot assign to formal parameter `{}`", id.text),
                        id.span,
                    );
                } else if !self.locals.iter().any(|l| l == &id.text) {
                    self.diags.error(
                        format!("assignment to unbound variable `{}`", id.text),
                        id.span,
                    );
                }
            }
            Expr::Select { base, attr, .. } => {
                self.expr(base);
                self.check_field_attr(attr);
            }
            Expr::Index { base, index, .. } => {
                self.expr(base);
                self.expr(index);
            }
            other => {
                self.diags.error(
                    "assignment target must be a local variable, a designator `E.f`, or a slot `E[I]`",
                    other.span(),
                );
            }
        }
    }

    fn check_field_attr(&mut self, attr: &oolong_syntax::Ident) {
        match self.scope.attr(&attr.text) {
            None => {
                self.diags
                    .error(format!("undeclared attribute `{}`", attr.text), attr.span);
            }
            Some(id) => {
                if self.scope.attr_info(id).kind == AttrKind::Group {
                    self.diags.error(
                        format!(
                            "data group `{}` cannot appear in a command (groups exist only in specifications)",
                            attr.text
                        ),
                        attr.span,
                    );
                }
            }
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Const(..) => {}
            Expr::Id(id) => {
                if !self.is_bound(&id.text) {
                    self.diags
                        .error(format!("unbound variable `{}`", id.text), id.span);
                }
            }
            Expr::Select { base, attr, .. } => {
                self.expr(base);
                self.check_field_attr(attr);
            }
            Expr::Index { base, index, .. } => {
                self.expr(base);
                self.expr(index);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Unary { operand, .. } => self.expr(operand),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::scope::Scope;
    use oolong_syntax::parse_program;

    fn errs(src: &str) -> String {
        Scope::analyze(&parse_program(src).expect("parses"))
            .unwrap_err()
            .to_string()
    }

    fn ok(src: &str) {
        Scope::analyze(&parse_program(src).expect("parses")).expect("analyses");
    }

    #[test]
    fn accepts_well_formed_body() {
        ok("field f
            proc p(t)
            impl p(t) { var x in x := t.f ; x.f := 3 ; assert x != null end }");
    }

    #[test]
    fn rejects_unbound_variable() {
        assert!(errs("proc p(t) impl p(t) { assert y = null }").contains("unbound variable `y`"));
    }

    #[test]
    fn rejects_assignment_to_parameter() {
        assert!(
            errs("proc p(t) impl p(t) { t := null }").contains("cannot assign to formal parameter")
        );
    }

    #[test]
    fn rejects_assignment_to_unbound() {
        assert!(
            errs("proc p(t) impl p(t) { x := null }").contains("assignment to unbound variable")
        );
    }

    #[test]
    fn rejects_group_in_command() {
        assert!(errs("group g proc p(t) impl p(t) { assert t.g = null }")
            .contains("cannot appear in a command"));
    }

    #[test]
    fn rejects_group_as_assignment_target() {
        assert!(errs("group g proc p(t) impl p(t) { t.g := null }")
            .contains("cannot appear in a command"));
    }

    #[test]
    fn rejects_undeclared_attribute_in_command() {
        assert!(errs("proc p(t) impl p(t) { assert t.zap = null }")
            .contains("undeclared attribute `zap`"));
    }

    #[test]
    fn rejects_call_to_undeclared_procedure() {
        assert!(errs("proc p(t) impl p(t) { helper(t) }").contains("undeclared procedure `helper`"));
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(errs("proc q(a, b) proc p(t) impl p(t) { q(t) }").contains("expects 2 argument(s)"));
    }

    #[test]
    fn rejects_shadowing() {
        assert!(errs("proc p(t) impl p(t) { var t in skip end }").contains("shadows"));
        assert!(errs("proc p(t) impl p(t) { var x in var x in skip end end }").contains("shadows"));
    }

    #[test]
    fn rejects_constant_assignment_target() {
        assert!(errs("proc p(t) impl p(t) { 3 := 4 }").contains("assignment target"));
    }

    #[test]
    fn locals_leave_scope_after_end() {
        assert!(
            errs("proc p(t) impl p(t) { { var x in skip end } ; assert x = null }")
                .contains("unbound variable `x`")
        );
    }

    #[test]
    fn if_condition_validated() {
        assert!(errs("proc p(t) impl p(t) { if zz = null then skip end }")
            .contains("unbound variable `zz`"));
    }
}
