//! Golden tests pinning the machine-readable output schemas: `oolong
//! check --json` (including the divergence members of an unknown verdict)
//! and `oolong stats --json` (the aggregated prover telemetry).
//!
//! The snapshots under `tests/golden/` at the repository root record the
//! *schema* — every key path with the JSON type of its value — rather than
//! the concrete numbers, so prover tuning doesn't churn them but renaming
//! or dropping a field that downstream consumers parse fails loudly. To
//! regenerate after a deliberate schema change, run the test and copy the
//! `actual` block it prints into the snapshot file.

use oolong_engine::{json, Json};
use std::fmt::Write as _;
use std::process::{Command, Output};

fn oolong(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_oolong"))
        .args(args)
        .output()
        .expect("spawns the oolong binary")
}

/// Renders the type skeleton of a JSON value: object keys in output order
/// with the type of each value; arrays by the schema of their first
/// element (they are homogeneous in all oolong output).
fn schema(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => {
            let _ = writeln!(out, "{pad}null");
        }
        Json::Bool(_) => {
            let _ = writeln!(out, "{pad}bool");
        }
        Json::Int(_) => {
            let _ = writeln!(out, "{pad}int");
        }
        Json::Float(_) => {
            let _ = writeln!(out, "{pad}float");
        }
        Json::Str(_) => {
            let _ = writeln!(out, "{pad}str");
        }
        Json::Array(items) => match items.first() {
            None => {
                let _ = writeln!(out, "{pad}array (empty)");
            }
            Some(first) => {
                let _ = writeln!(out, "{pad}array of:");
                schema(first, indent + 1, out);
            }
        },
        Json::Object(members) => {
            let _ = writeln!(out, "{pad}object:");
            for (key, member) in members {
                let _ = writeln!(out, "{pad}  {key}:");
                schema(member, indent + 2, out);
            }
        }
    }
}

fn assert_matches_snapshot(name: &str, value: &Json) {
    let mut actual = String::new();
    schema(value, 0, &mut actual);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/");
    let path = format!("{path}{name}");
    // `UPDATE_GOLDEN=1 cargo test -p oolong-cli --test golden` rewrites
    // the snapshots after a deliberate schema change; the diff is then
    // reviewed like any other source change.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual)
            .unwrap_or_else(|e| panic!("cannot update snapshot `{path}`: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read snapshot `{path}`: {e}\nactual:\n{actual}"));
    assert_eq!(
        actual, expected,
        "schema drift against `{path}`\nactual:\n{actual}"
    );
}

/// `check --json` on the §5 cyclic example under a starved budget: the
/// verdict is unknown, the stats carry the structured telemetry, and the
/// divergence member names the culprits.
#[test]
fn check_json_schema_is_stable() {
    let out = oolong(&[
        "check",
        "corpus:example3",
        "--json",
        "--max-instances",
        "20",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("check --json emits one JSON object");
    assert_matches_snapshot("check_example3_starved.schema.txt", &value);

    // Beyond the shape: the unknown verdict is attributed.
    let impls = value.get("impls").and_then(Json::as_array).expect("impls");
    let rep = impls.first().expect("one impl");
    assert_eq!(
        rep.get("verdict").and_then(Json::as_str),
        Some("unknown"),
        "starved example3 is unknown"
    );
    assert_eq!(
        rep.get("stats")
            .and_then(|s| s.get("exhausted"))
            .and_then(Json::as_str),
        Some("instances"),
        "the exhausted dimension is the instantiation budget"
    );
    let culprits = rep
        .get("divergence")
        .and_then(|d| d.get("culprits"))
        .and_then(Json::as_array)
        .expect("divergence culprits");
    assert!(!culprits.is_empty(), "culprits are listed");
    assert!(
        culprits
            .iter()
            .filter_map(Json::as_str)
            .any(|c| c.contains("[rep-inclusion]")),
        "a rep-inclusion axiom is named: {culprits:?}"
    );
}

/// `explain --json` on the §3.1 bad call: the full diagnosis object —
/// label, clause, touched chain, concrete pre-store, replay verdict.
#[test]
fn explain_json_schema_is_stable() {
    let out = oolong(&[
        "explain",
        "corpus:section31_bad_call",
        "--json",
        "--proc",
        "bad_caller",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("explain --json emits one JSON object");
    assert_matches_snapshot("explain_bad_call.schema.txt", &value);

    let rep = value
        .get("impls")
        .and_then(Json::as_array)
        .and_then(|i| i.first())
        .expect("the filtered impl");
    assert_eq!(
        rep.get("obligation_kind").and_then(Json::as_str),
        Some("owner-exclusion")
    );
    let diagnosis = rep.get("diagnosis").expect("diagnosis present");
    assert_eq!(
        diagnosis.get("snippet").and_then(Json::as_str),
        Some("w(st, st.vec)"),
        "the diagnosis blames the bad call site"
    );
    assert_eq!(
        diagnosis
            .get("replay")
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str),
        Some("confirmed"),
        "the replay confirms the violation"
    );
}

/// `check --json` attribution on a refuted obligation: kind, label id,
/// and the label object are present even without `--explain`; the full
/// diagnosis member appears only with it.
#[test]
fn check_json_refuted_attribution_schema_is_stable() {
    let out = oolong(&["check", "corpus:section31_bad_call", "--json", "--explain"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("check --json emits one JSON object");
    let rep = value
        .get("impls")
        .and_then(Json::as_array)
        .and_then(|impls| {
            impls
                .iter()
                .find(|r| r.get("proc").and_then(Json::as_str) == Some("bad_caller"))
        })
        .expect("bad_caller report");
    assert_matches_snapshot("check_bad_call_refuted.schema.txt", rep);

    // Without --explain, attribution stays but the diagnosis is dropped.
    let plain = oolong(&["check", "corpus:section31_bad_call", "--json"]);
    let stdout = String::from_utf8_lossy(&plain.stdout);
    let value = json::parse(stdout.trim()).expect("one JSON object");
    let rep = value
        .get("impls")
        .and_then(Json::as_array)
        .and_then(|impls| {
            impls
                .iter()
                .find(|r| r.get("proc").and_then(Json::as_str) == Some("bad_caller"))
        })
        .expect("bad_caller report");
    assert_eq!(
        rep.get("obligation_kind").and_then(Json::as_str),
        Some("owner-exclusion")
    );
    assert!(rep.get("label_id").is_some(), "label id survives");
    assert!(rep.get("diagnosis").is_none(), "diagnosis needs --explain");
}

/// A cached diagnosis replays byte-for-byte: two `explain --json` runs
/// against the same cache directory differ only in the cache-hit flag.
#[test]
fn explain_json_is_byte_stable_across_cache() {
    let dir = std::env::temp_dir().join(format!("oolong-golden-{}", std::process::id()));
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let run = || {
        let out = oolong(&[
            "explain",
            "corpus:section31_bad_call",
            "--json",
            "--cache-dir",
            dir_s,
        ]);
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let cold = run();
    let warm = run();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        warm.contains("\"cache_hit\":true"),
        "second run is served from the cache:\n{warm}"
    );
    assert_eq!(
        cold.replace("\"cache_hit\":false", "\"cache_hit\":true"),
        warm,
        "the cached diagnosis must replay byte-for-byte"
    );
}

/// `stats --json`: program shape plus the aggregated prover telemetry.
#[test]
fn stats_json_schema_is_stable() {
    let out = oolong(&["stats", "corpus:example1", "--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("stats --json emits one JSON object");
    assert_matches_snapshot("stats_example1.schema.txt", &value);

    let prover = value.get("prover").expect("prover section");
    assert_eq!(
        prover.get("obligations").and_then(Json::as_u64),
        Some(1),
        "example1 has one obligation"
    );
    assert!(
        prover.get("instances").and_then(Json::as_u64).unwrap_or(0) > 0,
        "instantiations were counted"
    );
}

/// The human-readable `stats` output names the hottest axioms.
#[test]
fn stats_text_reports_prover_telemetry() {
    let out = oolong(&["stats", "corpus:example1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "spec overhead:",
        "instantiations by axiom kind:",
        "rep-inclusion:",
        "hottest axioms:",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}

/// `infer --json` on a stripped paper program: proposals with span-anchored
/// edits, provenance, and the round/fixpoint/verification summary.
#[test]
fn infer_json_schema_is_stable() {
    let out = oolong(&["infer", "stripped:example1", "--json", "--no-cache"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("infer --json emits one JSON object");
    assert_matches_snapshot("infer_stripped.schema.txt", &value);

    assert_eq!(value.get("verified"), Some(&Json::Bool(true)));
    assert_eq!(value.get("fixpoint"), Some(&Json::Bool(true)));
    let proposals = value
        .get("proposals")
        .and_then(Json::as_array)
        .expect("proposals");
    assert_eq!(proposals.len(), 1, "example1 needs exactly one entry");
    let p = &proposals[0];
    assert_eq!(
        p.get("kind").and_then(Json::as_str),
        Some("modifies-extension")
    );
    assert_eq!(p.get("target").and_then(Json::as_str), Some("t.c.d.g"));
    assert_eq!(p.get("provenance").and_then(Json::as_str), Some("static"));
    assert!(
        p.get("edit").and_then(|e| e.get("insert")).is_some(),
        "the edit is machine-applicable"
    );
}

/// `infer --json` on a generated unannotated program: the accuracy member
/// compares the inferred frames against generator ground truth.
#[test]
fn infer_json_accuracy_schema_is_stable() {
    let out = oolong(&["infer", "unannotated:7", "--json", "--no-cache"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("infer --json emits one JSON object");
    assert_matches_snapshot("infer_unannotated.schema.txt", &value);

    assert_eq!(value.get("verified"), Some(&Json::Bool(true)));
    let acc = value.get("accuracy").expect("accuracy present");
    assert_eq!(
        acc.get("procs").and_then(Json::as_u64),
        acc.get("exact").and_then(Json::as_u64),
        "every inferred frame matches ground truth exactly"
    );
}
