//! Golden tests pinning the machine-readable output schemas: `oolong
//! check --json` (including the divergence members of an unknown verdict)
//! and `oolong stats --json` (the aggregated prover telemetry).
//!
//! The snapshots under `tests/golden/` at the repository root record the
//! *schema* — every key path with the JSON type of its value — rather than
//! the concrete numbers, so prover tuning doesn't churn them but renaming
//! or dropping a field that downstream consumers parse fails loudly. To
//! regenerate after a deliberate schema change, run the test and copy the
//! `actual` block it prints into the snapshot file.

use oolong_engine::{json, Json};
use std::fmt::Write as _;
use std::process::{Command, Output};

fn oolong(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_oolong"))
        .args(args)
        .output()
        .expect("spawns the oolong binary")
}

/// Renders the type skeleton of a JSON value: object keys in output order
/// with the type of each value; arrays by the schema of their first
/// element (they are homogeneous in all oolong output).
fn schema(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => {
            let _ = writeln!(out, "{pad}null");
        }
        Json::Bool(_) => {
            let _ = writeln!(out, "{pad}bool");
        }
        Json::Int(_) => {
            let _ = writeln!(out, "{pad}int");
        }
        Json::Float(_) => {
            let _ = writeln!(out, "{pad}float");
        }
        Json::Str(_) => {
            let _ = writeln!(out, "{pad}str");
        }
        Json::Array(items) => match items.first() {
            None => {
                let _ = writeln!(out, "{pad}array (empty)");
            }
            Some(first) => {
                let _ = writeln!(out, "{pad}array of:");
                schema(first, indent + 1, out);
            }
        },
        Json::Object(members) => {
            let _ = writeln!(out, "{pad}object:");
            for (key, member) in members {
                let _ = writeln!(out, "{pad}  {key}:");
                schema(member, indent + 2, out);
            }
        }
    }
}

fn assert_matches_snapshot(name: &str, value: &Json) {
    let mut actual = String::new();
    schema(value, 0, &mut actual);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/");
    let path = format!("{path}{name}");
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read snapshot `{path}`: {e}\nactual:\n{actual}"));
    assert_eq!(
        actual, expected,
        "schema drift against `{path}`\nactual:\n{actual}"
    );
}

/// `check --json` on the §5 cyclic example under a starved budget: the
/// verdict is unknown, the stats carry the structured telemetry, and the
/// divergence member names the culprits.
#[test]
fn check_json_schema_is_stable() {
    let out = oolong(&[
        "check",
        "corpus:example3",
        "--json",
        "--max-instances",
        "20",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("check --json emits one JSON object");
    assert_matches_snapshot("check_example3_starved.schema.txt", &value);

    // Beyond the shape: the unknown verdict is attributed.
    let impls = value.get("impls").and_then(Json::as_array).expect("impls");
    let rep = impls.first().expect("one impl");
    assert_eq!(
        rep.get("verdict").and_then(Json::as_str),
        Some("unknown"),
        "starved example3 is unknown"
    );
    assert_eq!(
        rep.get("stats")
            .and_then(|s| s.get("exhausted"))
            .and_then(Json::as_str),
        Some("instances"),
        "the exhausted dimension is the instantiation budget"
    );
    let culprits = rep
        .get("divergence")
        .and_then(|d| d.get("culprits"))
        .and_then(Json::as_array)
        .expect("divergence culprits");
    assert!(!culprits.is_empty(), "culprits are listed");
    assert!(
        culprits
            .iter()
            .filter_map(Json::as_str)
            .any(|c| c.contains("[rep-inclusion]")),
        "a rep-inclusion axiom is named: {culprits:?}"
    );
}

/// `stats --json`: program shape plus the aggregated prover telemetry.
#[test]
fn stats_json_schema_is_stable() {
    let out = oolong(&["stats", "corpus:example1", "--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("stats --json emits one JSON object");
    assert_matches_snapshot("stats_example1.schema.txt", &value);

    let prover = value.get("prover").expect("prover section");
    assert_eq!(
        prover.get("obligations").and_then(Json::as_u64),
        Some(1),
        "example1 has one obligation"
    );
    assert!(
        prover.get("instances").and_then(Json::as_u64).unwrap_or(0) > 0,
        "instantiations were counted"
    );
}

/// The human-readable `stats` output names the hottest axioms.
#[test]
fn stats_text_reports_prover_telemetry() {
    let out = oolong(&["stats", "corpus:example1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "spec overhead:",
        "instantiations by axiom kind:",
        "rep-inclusion:",
        "hottest axioms:",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}
