//! End-to-end tests of `oolong batch` / `oolong recheck`: a cold batch
//! over embedded corpus programs, then a warm recheck against the same
//! cache directory, with the zero-prover-call claim checked by reading the
//! JSONL event log the CLI wrote.

use std::path::PathBuf;
use std::process::{Command, Output};

fn oolong(args: &[&str], dir: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_oolong"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawns the oolong binary")
}

fn event_count(jsonl: &str, kind: &str) -> usize {
    let needle = format!("{{\"event\":\"{kind}\"");
    jsonl
        .lines()
        .filter(|line| line.starts_with(&needle))
        .count()
}

#[test]
fn batch_then_recheck_is_warm() {
    let dir = std::env::temp_dir().join(format!("oolong-cli-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");

    let cold = oolong(
        &[
            "batch",
            "corpus:example1",
            "corpus:stack_module",
            "--events",
            "cold.jsonl",
        ],
        &dir,
    );
    assert!(
        cold.status.success(),
        "cold batch: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let stdout = String::from_utf8_lossy(&cold.stdout);
    assert!(
        stdout.contains("prover calls"),
        "summary line present: {stdout}"
    );

    let warm = oolong(&["recheck", "--events", "warm.jsonl", "--json"], &dir);
    assert!(
        warm.status.success(),
        "recheck: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let report = String::from_utf8_lossy(&warm.stdout);
    assert!(
        report.contains("\"prover_calls\":0"),
        "warm recheck is all cache: {report}"
    );

    let log = std::fs::read_to_string(dir.join("warm.jsonl")).expect("event log written");
    assert!(event_count(&log, "obligation_started") > 0);
    assert_eq!(
        event_count(&log, "verified"),
        0,
        "no prover verdicts on a warm run"
    );
    assert_eq!(event_count(&log, "refuted"), 0);
    assert_eq!(event_count(&log, "fuel_exhausted"), 0);
    assert_eq!(
        event_count(&log, "cache_hit"),
        event_count(&log, "obligation_started")
    );
    assert_eq!(event_count(&log, "batch_summary"), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recheck_without_a_batch_is_an_error() {
    let dir = std::env::temp_dir().join(format!("oolong-cli-norecheck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    let out = oolong(&["recheck"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no batch recorded"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_json_is_parseable_shape() {
    let dir = std::env::temp_dir().join(format!("oolong-cli-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    let out = oolong(&["check", "corpus:example1", "--json"], &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_end().starts_with('{') && stdout.trim_end().ends_with('}'));
    assert!(stdout.contains("\"impls\":"));
    assert!(stdout.contains("\"summary\":"));
    let _ = std::fs::remove_dir_all(&dir);
}
