//! `oolong` — command-line interface to the data-group side-effect checker.
//!
//! ```text
//! oolong check <file|corpus:NAME> [--naive] [--null-checks] [--max-instances N] [--max-gen N]
//! oolong run   <file|corpus:NAME> --proc NAME [--seeds N] [--owner-exclusion]
//! oolong vc    <file|corpus:NAME> [--proc NAME]
//! oolong stats <file|corpus:NAME>
//! oolong corpus
//! ```
//!
//! Sources can be file paths or `corpus:NAME` references into the embedded
//! paper corpus (see `oolong corpus`).

use datagroups::{overhead, CheckOptions, Checker};
use oolong_interp::{ExecConfig, Interp, RngOracle, RunOutcome};
use oolong_sema::Scope;
use oolong_syntax::parse_program;
use std::process::ExitCode;

mod experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage:
  oolong check <file|corpus:NAME> [--modular] [--naive] [--null-checks] [--explain]
               [--max-instances N] [--max-gen N]
  oolong run   <file|corpus:NAME> --proc NAME [--seeds N] [--owner-exclusion]
  oolong vc    <file|corpus:NAME> [--proc NAME]
  oolong stats <file|corpus:NAME>
  oolong corpus
  oolong experiments"
        .to_string()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "vc" => cmd_vc(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "corpus" => cmd_corpus(),
        "experiments" => {
            experiments::run_all();
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    }
}

fn load_source(spec: &str) -> Result<String, String> {
    if let Some(name) = spec.strip_prefix("corpus:") {
        return oolong_corpus::by_name(name)
            .map(|p| p.source.to_string())
            .ok_or_else(|| format!("no corpus program named `{name}` (try `oolong corpus`)"));
    }
    std::fs::read_to_string(spec).map_err(|e| format!("cannot read `{spec}`: {e}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Names of options that consume a following value.
const VALUE_OPTS: &[&str] = &["--max-instances", "--max-gen", "--proc", "--seeds"];

fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn positional(args: &[String]) -> Result<&str, String> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_OPTS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            return Ok(a);
        }
    }
    Err(format!("missing input\n{}", usage()))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let mut options = CheckOptions {
        naive: flag(args, "--naive"),
        null_checks: flag(args, "--null-checks"),
        ..CheckOptions::default()
    };
    if let Some(n) = opt_value(args, "--max-instances") {
        options.budget.max_instances = n.parse().map_err(|_| "bad --max-instances")?;
    }
    if let Some(n) = opt_value(args, "--max-gen") {
        options.budget.max_term_gen = n.parse().map_err(|_| "bad --max-gen")?;
    }
    if flag(args, "--modular") {
        let report = datagroups::check_modular(&program, &options).map_err(|e| e.render(&source))?;
        println!("{report}");
        return Ok(if report.all_verified() { ExitCode::SUCCESS } else { ExitCode::FAILURE });
    }
    let checker = Checker::new(&program, options).map_err(|e| e.render(&source))?;
    let report = checker.check_all_parallel();
    let explain = flag(args, "--explain");
    for rep in &report.impls {
        print!("impl {}: {}", rep.proc_name, rep.verdict);
        if let Some(stats) = rep.verdict.stats() {
            print!("  [{stats}]");
        }
        println!();
        if explain {
            if let Some(branch) = rep.verdict.open_branch() {
                println!("  unrefuted scenario:");
                for line in branch {
                    println!("    {line}");
                }
            }
        }
    }
    let (v, r, u) = report.tally();
    println!("{v} verified, {r} rejected, {u} unknown");
    Ok(if report.all_verified() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let scope = Scope::analyze(&program).map_err(|e| e.render(&source))?;
    let proc = opt_value(args, "--proc").ok_or("missing --proc NAME")?;
    let seeds: u64 = opt_value(args, "--seeds")
        .unwrap_or_else(|| "20".into())
        .parse()
        .map_err(|_| "bad --seeds")?;
    let config = ExecConfig {
        check_owner_exclusion: flag(args, "--owner-exclusion"),
        ..ExecConfig::default()
    };
    let mut wrong = 0u64;
    let mut completed = 0u64;
    let mut blocked = 0u64;
    let mut fuel = 0u64;
    for seed in 0..seeds {
        let mut interp = Interp::new(&scope, config.clone(), RngOracle::seeded(seed));
        match interp.run_proc_fresh(&proc) {
            RunOutcome::Completed => completed += 1,
            RunOutcome::Blocked => blocked += 1,
            RunOutcome::OutOfFuel => fuel += 1,
            RunOutcome::Wrong(w) => {
                wrong += 1;
                println!("seed {seed}: WRONG — {w}");
            }
        }
    }
    println!("{seeds} runs: {completed} completed, {blocked} blocked, {wrong} wrong, {fuel} out-of-fuel");
    Ok(if wrong == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_vc(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let checker =
        Checker::new(&program, CheckOptions::default()).map_err(|e| e.render(&source))?;
    let filter = opt_value(args, "--proc");
    for (impl_id, info) in checker.scope().impls() {
        let name = checker.scope().proc_info(info.proc).name.clone();
        if let Some(f) = &filter {
            if &name != f {
                continue;
            }
        }
        let vc = checker.vc(impl_id).map_err(|e| e.to_string())?;
        println!("=== VC for impl {name} ({} hypotheses)", vc.hypotheses.len());
        for (i, h) in vc.hypotheses.iter().enumerate() {
            println!("H{i}: {h}");
        }
        println!("⊢ {}", vc.goal);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let scope = Scope::analyze(&program).map_err(|e| e.render(&source))?;
    println!("declarations: {}", program.decls.len());
    println!("attributes:   {}", scope.attr_count());
    println!("pivots:       {}", scope.pivots().len());
    println!("procedures:   {}", scope.procs().count());
    println!("impls:        {}", scope.impls().count());
    println!("spec overhead: {}", overhead(&program));
    Ok(ExitCode::SUCCESS)
}

fn cmd_corpus() -> Result<ExitCode, String> {
    for p in oolong_corpus::all() {
        println!("{:<22} §{}", p.name, p.section);
    }
    Ok(ExitCode::SUCCESS)
}
