//! `oolong` — command-line interface to the data-group side-effect checker.
//!
//! ```text
//! oolong check   <file|corpus:NAME> [--naive] [--null-checks] [--json] [--explain-unknown]
//! oolong infer   <file|corpus:NAME|stripped:NAME|unannotated:SEED> [--proc NAME] [--reads] [--apply] [--json]
//! oolong explain <file|corpus:NAME> [--proc NAME] [--cache-dir DIR] [--json]
//! oolong batch   <files...> [--cache-dir DIR] [--workers N] [--events PATH] [--json]
//! oolong recheck [--cache-dir DIR] [--events PATH] [--json]
//! oolong serve   --socket PATH [--cache-dir DIR] [--workers N] [--queue N] [--json-log]
//! oolong client  <request.json> | --eval '<json>' [--socket PATH]
//! oolong run     <file|corpus:NAME> --proc NAME [--seeds N] [--owner-exclusion]
//! oolong vc      <file|corpus:NAME> [--proc NAME]
//! oolong stats   <file|corpus:NAME> [--json]
//! oolong axioms  <file|corpus:NAME> [--json]
//! oolong corpus
//! ```
//!
//! Sources can be file paths or `corpus:NAME` references into the embedded
//! paper corpus (see `oolong corpus`). `batch` checks many units through
//! the incremental engine, persisting verdicts under `--cache-dir`;
//! `recheck` repeats the last recorded batch against the same cache, so an
//! unchanged program verifies without a single prover call. `serve` keeps
//! a resident daemon on a Unix socket answering the same requests over
//! newline-delimited JSON through a shared in-memory + on-disk verdict
//! cache; `client` scripts a session against it. `explain`
//! diagnoses every rejected implementation: it resolves the refuting
//! branch's position label to a source command, concretizes the prover's
//! candidate model into an initial store, and replays it through the
//! interpreter to confirm (or demote) the counterexample. `check
//! --explain-unknown` attributes a budget-exhausted verdict to the
//! quantified axioms that consumed the budget; `stats` aggregates the same
//! per-axiom telemetry across every obligation of a program. `axioms`
//! dumps every background axiom's declared matching patterns (PATS/MPAT),
//! its scheduling phase, and where its instantiations landed (background
//! pre-saturation vs obligation frames) across the program's proofs.

use datagroups::{overhead, prover_metrics, BackgroundSlice, CheckOptions, Checker};
use oolong_diagnose::{diagnose_refutation, diagnose_restriction, Diagnosis, Replay};
use oolong_engine::{diagnosis_to_json, label_to_json, BatchUnit, Engine, EngineOptions, Json};
use oolong_interp::{ExecConfig, Interp, RngOracle, RunOutcome};
use oolong_prover::SearchStrategy;
use oolong_sema::Scope;
use oolong_serve::{Client, ServeOptions, Server};
use oolong_syntax::parse_program;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage:
  oolong check   <file|corpus:NAME> [--modular] [--naive] [--null-checks] [--explain]
                 [--explain-unknown] [--json] [--max-instances N] [--max-gen N]
                 [--clone-search] [--no-share-contexts] [--no-slice-axioms]
                 [--no-pattern-policies]
  oolong explain <file|corpus:NAME> [--proc NAME] [--cache-dir DIR] [--json]
                 [--naive] [--null-checks] [--max-instances N] [--max-gen N]
                 [--clone-search]
  oolong infer   <file|corpus:NAME|stripped:NAME|unannotated:SEED> [--proc NAME]
                 [--reads] [--apply] [--json] [--max-rounds N] [--cache-dir DIR] [--no-cache]
                 [--naive] [--null-checks] [--max-instances N] [--max-gen N]
  oolong batch   <files|corpus:NAMEs...> [--cache-dir DIR] [--no-cache] [--workers N]
                 [--events PATH] [--json] [--naive] [--null-checks]
                 [--max-instances N] [--max-gen N] [--clone-search]
                 [--no-share-contexts] [--no-slice-axioms] [--no-pattern-policies]
  oolong recheck [--cache-dir DIR] [--events PATH] [--json]
  oolong serve   --socket PATH [--cache-dir DIR] [--no-cache] [--workers N] [--queue N]
                 [--mem-cap N] [--events PATH] [--json-log] [--quiet] [--naive]
                 [--null-checks] [--max-instances N] [--max-gen N] [--clone-search]
  oolong client  <request.json> | --eval '<json>' [--socket PATH]
  oolong run     <file|corpus:NAME> --proc NAME [--seeds N] [--owner-exclusion]
  oolong vc      <file|corpus:NAME> [--proc NAME]
  oolong stats   <file|corpus:NAME> [--json] [--naive] [--null-checks]
                 [--max-instances N] [--max-gen N] [--no-share-contexts]
                 [--no-slice-axioms] [--no-pattern-policies]
  oolong axioms  <file|corpus:NAME> [--json] [--naive] [--null-checks]
                 [--max-instances N] [--max-gen N] [--no-pattern-policies]
  oolong corpus
  oolong experiments"
        .to_string()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "infer" => cmd_infer(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "recheck" => cmd_recheck(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "vc" => cmd_vc(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "axioms" => cmd_axioms(&args[1..]),
        "corpus" => cmd_corpus(),
        "experiments" => {
            experiments::run_all();
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    }
}

fn load_source(spec: &str) -> Result<String, String> {
    if let Some(name) = spec.strip_prefix("corpus:") {
        return oolong_corpus::by_name(name)
            .map(|p| p.source.to_string())
            .ok_or_else(|| format!("no corpus program named `{name}` (try `oolong corpus`)"));
    }
    std::fs::read_to_string(spec).map_err(|e| format!("cannot read `{spec}`: {e}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Names of options that consume a following value.
const VALUE_OPTS: &[&str] = &[
    "--max-instances",
    "--max-gen",
    "--max-rounds",
    "--proc",
    "--seeds",
    "--cache-dir",
    "--workers",
    "--events",
    "--socket",
    "--queue",
    "--mem-cap",
    "--eval",
];

fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_OPTS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            out.push(a.as_str());
        }
    }
    out
}

fn positional(args: &[String]) -> Result<&str, String> {
    positionals(args)
        .first()
        .copied()
        .ok_or_else(|| format!("missing input\n{}", usage()))
}

/// Parses the checking options shared by `check` and `batch`.
fn check_options(args: &[String]) -> Result<CheckOptions, String> {
    let mut options = CheckOptions {
        naive: flag(args, "--naive"),
        null_checks: flag(args, "--null-checks"),
        ..CheckOptions::default()
    };
    if let Some(n) = opt_value(args, "--max-instances") {
        options.budget.max_instances = n.parse().map_err(|_| "bad --max-instances")?;
    }
    if let Some(n) = opt_value(args, "--max-gen") {
        options.budget.max_term_gen = n.parse().map_err(|_| "bad --max-gen")?;
    }
    if flag(args, "--clone-search") {
        options.strategy = SearchStrategy::CloneSearch;
    }
    if flag(args, "--no-share-contexts") {
        options.share_contexts = false;
    }
    if flag(args, "--no-slice-axioms") {
        options.slice_axioms = false;
    }
    if flag(args, "--no-pattern-policies") {
        options.pattern_policies = false;
    }
    Ok(options)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let options = check_options(args)?;
    if flag(args, "--modular") {
        let report =
            datagroups::check_modular(&program, &options).map_err(|e| e.render(&source))?;
        println!("{report}");
        return Ok(if report.all_verified() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    let checker = Checker::new(&program, options).map_err(|e| e.render(&source))?;
    let report = checker.check_all_parallel();
    let explain = flag(args, "--explain");
    if flag(args, "--json") {
        println!(
            "{}",
            check_report_json(&checker, &source, &report, explain).render()
        );
        return Ok(if report.all_verified() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    let explain_unknown = flag(args, "--explain-unknown");
    for rep in &report.impls {
        print!("impl {}: {}", rep.proc_name, rep.verdict);
        if let Some(stats) = rep.verdict.stats() {
            print!("  [{stats}]");
        }
        println!();
        if explain {
            if let Some(branch) = rep.verdict.open_branch() {
                println!("  unrefuted scenario:");
                for line in branch {
                    println!("    {line}");
                }
            }
            if let Some(d) = diagnosis_for(&checker, &source, rep) {
                for line in render_diagnosis(&d) {
                    println!("  {line}");
                }
            }
        }
        if explain_unknown {
            if let Some(divergence) = rep.verdict.divergence() {
                for line in divergence.to_string().lines() {
                    println!("  {line}");
                }
            }
        }
    }
    let (v, r, u) = report.tally();
    println!("{v} verified, {r} rejected, {u} unknown");
    Ok(if report.all_verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Diagnoses one rejected implementation from a plain `check` report:
/// refuted VCs go through model concretization and interpreter replay,
/// restriction violations through the dynamic store audit.
fn diagnosis_for(
    checker: &Checker,
    source: &str,
    rep: &datagroups::ImplReport,
) -> Option<Diagnosis> {
    match &rep.verdict {
        datagroups::Verdict::NotVerified(_, refutation) => {
            let vc = checker.vc(rep.impl_id).ok()?;
            diagnose_refutation(checker.scope(), source, &vc, refutation)
        }
        datagroups::Verdict::RestrictionViolation(violations) => diagnose_restriction(
            checker.scope(),
            source,
            rep.impl_id,
            &rep.proc_name,
            violations,
        ),
        _ => None,
    }
}

/// Human-readable lines for one diagnosis.
fn render_diagnosis(d: &Diagnosis) -> Vec<String> {
    let mut out = vec![
        format!("{} at line {}, col {}:", d.kind.as_str(), d.line, d.col),
        format!("  | {}", d.snippet),
        format!("  clause: {}", d.clause),
    ];
    if !d.touched.is_empty() {
        out.push(format!("  touched: {}", d.touched.join(", ")));
    }
    if !d.pre_store.is_empty() {
        out.push(format!("  pre-store: {}", d.pre_store.join(", ")));
    }
    if !d.args.is_empty() {
        out.push(format!("  args: {}", d.args.join(", ")));
    }
    out.push(match &d.replay {
        Replay::Confirmed { oracle, witness } => {
            format!("  replay: confirmed ({oracle} oracle) — {witness}")
        }
        Replay::Spurious { attempts } => {
            format!("  replay: spurious (prover-internal) after {attempts} runs")
        }
        Replay::Unavailable { reason } => format!("  replay: unavailable — {reason}"),
    });
    out
}

/// The `--json` rendering of a plain `check` report. Refuted obligations
/// always carry their attribution (obligation kind, label id); the full
/// diagnosis rides along when `explain` is set.
fn check_report_json(
    checker: &Checker,
    source: &str,
    report: &datagroups::Report,
    explain: bool,
) -> Json {
    let impls = report
        .impls
        .iter()
        .map(|rep| {
            let mut members = vec![
                ("proc".to_string(), Json::Str(rep.proc_name.clone())),
                (
                    "verdict".to_string(),
                    Json::Str(rep.verdict.label().to_string()),
                ),
            ];
            if let Some(stats) = rep.verdict.stats() {
                members.push(("stats".to_string(), oolong_engine::stats_to_json(stats)));
            }
            if let Some(divergence) = rep.verdict.divergence() {
                members.push((
                    "divergence".to_string(),
                    Json::Object(vec![
                        (
                            "reason".to_string(),
                            Json::Str(divergence.reason.as_str().to_string()),
                        ),
                        (
                            "culprits".to_string(),
                            Json::Array(
                                divergence
                                    .culprits
                                    .iter()
                                    .map(|c| Json::Str(c.to_string()))
                                    .collect(),
                            ),
                        ),
                    ]),
                ));
            }
            if let Some(branch) = rep.verdict.open_branch() {
                members.push((
                    "open_branch".to_string(),
                    Json::Array(branch.iter().map(|l| Json::Str(l.clone())).collect()),
                ));
            }
            if let Some(refutation) = rep.verdict.refutation() {
                if let Some(primary) = &refutation.primary {
                    members.push((
                        "obligation_kind".to_string(),
                        Json::Str(primary.kind.as_str().to_string()),
                    ));
                    members.push(("label_id".to_string(), Json::Int(primary.id as i64)));
                    members.push(("label".to_string(), label_to_json(primary)));
                }
            }
            if explain {
                if let Some(d) = diagnosis_for(checker, source, rep) {
                    members.push(("diagnosis".to_string(), diagnosis_to_json(&d)));
                }
            }
            Json::Object(members)
        })
        .collect();
    let (v, r, u) = report.tally();
    Json::Object(vec![
        ("impls".to_string(), Json::Array(impls)),
        (
            "summary".to_string(),
            Json::Object(vec![
                ("verified".to_string(), Json::Int(v as i64)),
                ("rejected".to_string(), Json::Int(r as i64)),
                ("unknown".to_string(), Json::Int(u as i64)),
            ]),
        ),
    ])
}

/// `oolong explain` — diagnose every rejected implementation through the
/// engine (so repeated explains of an unchanged program replay the cached
/// diagnosis byte-for-byte instead of re-proving and re-running replay).
fn cmd_explain(args: &[String]) -> Result<ExitCode, String> {
    let spec = positional(args)?;
    let source = load_source(spec)?;
    let options = EngineOptions {
        check: check_options(args)?,
        workers: 0,
        cache_dir: opt_value(args, "--cache-dir").map(PathBuf::from),
        diagnose: true,
    };
    let engine = Engine::new(options).map_err(|e| format!("cannot open cache: {e}"))?;
    let report = engine.check_source(spec, &source);
    if let Some(error) = report.unit_errors.first() {
        return Err(error.message.clone());
    }
    let filter = opt_value(args, "--proc");
    let obligations: Vec<_> = report
        .obligations
        .iter()
        .filter(|o| filter.as_deref().is_none_or(|f| o.proc_name == f))
        .collect();
    if obligations.is_empty() {
        return Err(match filter {
            Some(f) => format!("no implementation of `{f}` in `{spec}`"),
            None => format!("no implementations in `{spec}`"),
        });
    }
    let all_verified = obligations.iter().all(|o| o.verdict.is_verified());
    if flag(args, "--json") {
        let impls = obligations
            .iter()
            .map(|o| {
                let mut members = vec![
                    ("proc".to_string(), Json::Str(o.proc_name.clone())),
                    (
                        "verdict".to_string(),
                        Json::Str(o.verdict.label().to_string()),
                    ),
                    ("cache_hit".to_string(), Json::Bool(o.cache_hit)),
                ];
                if let Some(refutation) = o.verdict.refutation() {
                    if let Some(primary) = &refutation.primary {
                        members.push((
                            "obligation_kind".to_string(),
                            Json::Str(primary.kind.as_str().to_string()),
                        ));
                        members.push(("label_id".to_string(), Json::Int(primary.id as i64)));
                        members.push(("label".to_string(), label_to_json(primary)));
                    }
                }
                members.push((
                    "diagnosis".to_string(),
                    match &o.diagnosis {
                        Some(d) => diagnosis_to_json(d),
                        None => Json::Null,
                    },
                ));
                Json::Object(members)
            })
            .collect();
        println!(
            "{}",
            Json::Object(vec![
                ("unit".to_string(), Json::Str(spec.to_string())),
                ("impls".to_string(), Json::Array(impls)),
            ])
            .render()
        );
        return Ok(if all_verified {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    for o in &obligations {
        print!("impl {}: {}", o.proc_name, o.verdict);
        if o.cache_hit {
            print!("  [cached]");
        }
        println!();
        match &o.diagnosis {
            Some(d) => {
                for line in render_diagnosis(d) {
                    println!("  {line}");
                }
            }
            None if !o.verdict.is_verified() => {
                println!("  no diagnosis: the refuting branch carried no position label");
            }
            None => {}
        }
    }
    Ok(if all_verified {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Default location of the persistent verdict cache and batch manifest.
const DEFAULT_CACHE_DIR: &str = ".oolong-cache";

/// Parses everything `batch`/`recheck` need *before* any side effect
/// (notably the manifest write), so a bad option leaves the recorded
/// batch untouched.
fn cmd_infer(args: &[String]) -> Result<ExitCode, String> {
    let spec = positional(args)?;
    let unit = match oolong_infer::resolve_spec(spec) {
        Some(resolved) => resolved?,
        None => oolong_infer::InferUnit {
            name: spec.to_string(),
            source: load_source(spec)?,
            truth: None,
        },
    };
    let mut opts = oolong_infer::InferOptions {
        check: check_options(args)?,
        proc: opt_value(args, "--proc"),
        infer_reads: flag(args, "--reads"),
        ..Default::default()
    };
    if let Some(n) = opt_value(args, "--max-rounds") {
        opts.max_rounds = n.parse().map_err(|_| "bad --max-rounds")?;
    }
    let engine_opts = EngineOptions {
        check: opts.check.clone(),
        workers: 0,
        cache_dir: batch_cache_dir(args),
        diagnose: false,
    };
    let engine = Engine::new(engine_opts).map_err(|e| format!("cannot open cache: {e}"))?;
    let outcome = oolong_infer::infer(&engine, &unit.name, &unit.source, &opts)?;
    let accuracy = match &unit.truth {
        Some(truth) => Some(oolong_infer::accuracy(&outcome, truth)?),
        None => None,
    };

    // `--apply` rewrites file units in place; for corpus/generated units
    // (no backing file) it prints the rewritten source instead.
    let apply = flag(args, "--apply");
    let is_file = !spec.contains(':') || Path::new(spec).exists();
    if apply && is_file {
        std::fs::write(spec, &outcome.edited_source)
            .map_err(|e| format!("cannot write `{spec}`: {e}"))?;
    }

    if flag(args, "--json") {
        println!(
            "{}",
            oolong_infer::infer_json(&outcome, accuracy.as_ref(), apply).render()
        );
        return Ok(if outcome.verified {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    if apply && !is_file {
        println!("{}", outcome.edited_source.trim_end());
        println!("---");
    }
    for proposal in &outcome.proposals {
        println!(
            "{}: {} {}  [{}, round {}]",
            proposal.proc,
            proposal.kind_name(),
            proposal.target(&|p| outcome.params_of(p)),
            proposal.provenance.as_str(),
            proposal.round
        );
    }
    for note in &outcome.notes {
        println!("note: {note}");
    }
    if let Some(acc) = &accuracy {
        println!(
            "accuracy: {}/{} exact, {} superset, {} other",
            acc.exact(),
            acc.total(),
            acc.superset(),
            acc.other()
        );
    }
    println!(
        "{} proposals in {} rounds: fixpoint={}, verified={}{}",
        outcome.proposals.len(),
        outcome.rounds,
        outcome.fixpoint,
        outcome.verified,
        if outcome.membership_fallback {
            " (membership fallback)"
        } else {
            ""
        }
    );
    if !outcome.unverified_procs.is_empty() {
        println!("unverified: {}", outcome.unverified_procs.join(", "));
    }
    Ok(if outcome.verified {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn engine_options(args: &[String], cache_dir: Option<PathBuf>) -> Result<EngineOptions, String> {
    let workers = match opt_value(args, "--workers") {
        Some(n) => n.parse().map_err(|_| "bad --workers")?,
        None => 0,
    };
    Ok(EngineOptions {
        check: check_options(args)?,
        workers,
        cache_dir,
        diagnose: flag(args, "--explain"),
    })
}

/// Shared driver behind `batch` and `recheck`.
fn run_batch(
    args: &[String],
    units: Vec<BatchUnit>,
    options: EngineOptions,
) -> Result<ExitCode, String> {
    let engine = Engine::new(options).map_err(|e| format!("cannot open cache: {e}"))?;
    let report = engine.check_batch(&units);
    if let Some(path) = opt_value(args, "--events") {
        // Streamed line by line with per-line flush, so a crashed or
        // interrupted run still leaves every completed event on disk.
        let mut writer = oolong_engine::EventLogWriter::create(Path::new(&path))
            .map_err(|e| format!("cannot open `{path}`: {e}"))?;
        writer
            .write_all(&report.events)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    if flag(args, "--json") {
        println!("{}", report.to_json().render());
        return Ok(if report.all_verified() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    for error in &report.unit_errors {
        eprintln!("{}: {}", error.unit, error.message);
    }
    for obligation in &report.obligations {
        print!(
            "impl {} ({}): {}",
            obligation.proc_name, obligation.unit, obligation.verdict
        );
        if obligation.cache_hit {
            print!("  [cached]");
        } else if let Some(stats) = obligation.verdict.stats() {
            print!("  [{stats}]");
        }
        println!();
    }
    let (v, r, u) = report.tally();
    println!(
        "{} obligations: {v} verified, {r} rejected, {u} unknown; {} cache hits, {} prover calls, {:.1} ms",
        report.obligations.len(),
        report.cache_hits,
        report.prover_calls,
        report.millis
    );
    Ok(if report.all_verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_batch(args: &[String]) -> Result<ExitCode, String> {
    let specs = positionals(args);
    if specs.is_empty() {
        return Err(format!("missing input\n{}", usage()));
    }
    let units = specs
        .iter()
        .map(|spec| {
            Ok(BatchUnit {
                name: spec.to_string(),
                source: load_source(spec)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let cache_dir = batch_cache_dir(args);
    let options = engine_options(args, cache_dir.clone())?;
    if let Some(dir) = &cache_dir {
        write_manifest(dir, &specs)?;
    }
    run_batch(args, units, options)
}

fn cmd_recheck(args: &[String]) -> Result<ExitCode, String> {
    let dir = batch_cache_dir(args)
        .ok_or("recheck needs a cache (drop --no-cache or pass --cache-dir DIR)")?;
    let specs = read_manifest(&dir)?;
    let units = specs
        .iter()
        .map(|spec| {
            Ok(BatchUnit {
                name: spec.clone(),
                source: load_source(spec)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let options = engine_options(args, Some(dir))?;
    run_batch(args, units, options)
}

fn batch_cache_dir(args: &[String]) -> Option<PathBuf> {
    if flag(args, "--no-cache") {
        return None;
    }
    Some(PathBuf::from(
        opt_value(args, "--cache-dir").unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string()),
    ))
}

/// Records which units the last `batch` checked, so `recheck` can repeat it.
fn write_manifest(dir: &Path, specs: &[&str]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    let manifest = Json::Object(vec![(
        "units".to_string(),
        Json::Array(specs.iter().map(|s| Json::Str(s.to_string())).collect()),
    )]);
    let path = dir.join("manifest.json");
    std::fs::write(&path, manifest.render())
        .map_err(|e| format!("cannot write `{}`: {e}", path.display()))
}

fn read_manifest(dir: &Path) -> Result<Vec<String>, String> {
    let path = dir.join("manifest.json");
    let text = std::fs::read_to_string(&path).map_err(|_| {
        format!(
            "no batch recorded under `{}` (run `oolong batch` first)",
            dir.display()
        )
    })?;
    let value = oolong_engine::json::parse(&text)
        .map_err(|e| format!("corrupt manifest `{}`: {e}", path.display()))?;
    value
        .get("units")
        .and_then(Json::as_array)
        .map(|units| {
            units
                .iter()
                .filter_map(|u| u.as_str().map(str::to_string))
                .collect::<Vec<_>>()
        })
        .filter(|units| !units.is_empty())
        .ok_or_else(|| format!("corrupt manifest `{}`: no units", path.display()))
}

/// `oolong serve` — run the resident verification daemon in the
/// foreground until a client sends `shutdown`.
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let socket = opt_value(args, "--socket").ok_or("serve needs --socket PATH")?;
    let workers = match opt_value(args, "--workers") {
        Some(n) => n.parse().map_err(|_| "bad --workers")?,
        None => 0,
    };
    let queue = match opt_value(args, "--queue") {
        Some(n) => n.parse().map_err(|_| "bad --queue")?,
        None => 64,
    };
    let mem_capacity = match opt_value(args, "--mem-cap") {
        Some(n) => n.parse().map_err(|_| "bad --mem-cap")?,
        None => oolong_engine::DEFAULT_MEMORY_CAPACITY,
    };
    let options = ServeOptions {
        socket: PathBuf::from(socket),
        cache_dir: batch_cache_dir(args),
        mem_capacity,
        workers,
        queue,
        check: check_options(args)?,
        events: opt_value(args, "--events").map(PathBuf::from),
        json_log: flag(args, "--json-log"),
        quiet: flag(args, "--quiet"),
        ..ServeOptions::default()
    };
    let server = Server::bind(options).map_err(|e| format!("cannot start server: {e}"))?;
    server.run().map_err(|e| format!("server failed: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

/// `oolong client` — send request lines to a running daemon and print
/// each response line. Requests come from `--eval '<json>'` or a file of
/// newline-delimited requests (`-` for stdin).
fn cmd_client(args: &[String]) -> Result<ExitCode, String> {
    let socket = opt_value(args, "--socket").unwrap_or_else(|| "oolong.sock".to_string());
    let requests = if let Some(request) = opt_value(args, "--eval") {
        request
    } else {
        match positional(args)? {
            "-" => std::io::read_to_string(std::io::stdin())
                .map_err(|e| format!("cannot read stdin: {e}"))?,
            path => {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
            }
        }
    };
    let mut client = Client::connect(&socket)
        .map_err(|e| format!("cannot connect to `{socket}`: {e} (is the server running?)"))?;
    let mut all_ok = true;
    for line in requests.lines().filter(|l| !l.trim().is_empty()) {
        let response = client
            .request(line)
            .map_err(|e| format!("request failed: {e}"))?;
        all_ok &= oolong_serve::response_ok(&response);
        println!("{}", response.render());
    }
    Ok(if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let scope = Scope::analyze(&program).map_err(|e| e.render(&source))?;
    let proc = opt_value(args, "--proc").ok_or("missing --proc NAME")?;
    let seeds: u64 = opt_value(args, "--seeds")
        .unwrap_or_else(|| "20".into())
        .parse()
        .map_err(|_| "bad --seeds")?;
    let config = ExecConfig {
        check_owner_exclusion: flag(args, "--owner-exclusion"),
        ..ExecConfig::default()
    };
    let mut wrong = 0u64;
    let mut completed = 0u64;
    let mut blocked = 0u64;
    let mut fuel = 0u64;
    for seed in 0..seeds {
        let mut interp = Interp::new(&scope, config.clone(), RngOracle::seeded(seed));
        match interp.run_proc_fresh(&proc) {
            RunOutcome::Completed => completed += 1,
            RunOutcome::Blocked => blocked += 1,
            RunOutcome::OutOfFuel => fuel += 1,
            RunOutcome::Wrong(w) => {
                wrong += 1;
                println!("seed {seed}: WRONG — {w}");
            }
        }
    }
    println!(
        "{seeds} runs: {completed} completed, {blocked} blocked, {wrong} wrong, {fuel} out-of-fuel"
    );
    Ok(if wrong == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_vc(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let checker = Checker::new(&program, CheckOptions::default()).map_err(|e| e.render(&source))?;
    let filter = opt_value(args, "--proc");
    for (impl_id, info) in checker.scope().impls() {
        let name = checker.scope().proc_info(info.proc).name.clone();
        if let Some(f) = &filter {
            if &name != f {
                continue;
            }
        }
        let vc = checker.vc(impl_id).map_err(|e| e.to_string())?;
        println!(
            "=== VC for impl {name} ({} hypotheses)",
            vc.hypotheses.len()
        );
        for (i, h) in vc.hypotheses.iter().enumerate() {
            println!("H{i}: {h}");
        }
        println!("⊢ {}", vc.goal);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let scope = Scope::analyze(&program).map_err(|e| e.render(&source))?;
    let spec = overhead(&program);
    let checker = Checker::new(&program, check_options(args)?).map_err(|e| e.render(&source))?;
    let report = checker.check_all_parallel();
    let metrics = prover_metrics(&report);
    if flag(args, "--json") {
        println!(
            "{}",
            Json::Object(vec![
                (
                    "program".to_string(),
                    Json::Object(vec![
                        (
                            "declarations".to_string(),
                            Json::Int(program.decls.len() as i64)
                        ),
                        (
                            "attributes".to_string(),
                            Json::Int(scope.attr_count() as i64)
                        ),
                        ("pivots".to_string(), Json::Int(scope.pivots().len() as i64)),
                        (
                            "procedures".to_string(),
                            Json::Int(scope.procs().count() as i64)
                        ),
                        ("impls".to_string(), Json::Int(scope.impls().count() as i64)),
                        (
                            "spec_tokens".to_string(),
                            Json::Int(spec.spec_tokens as i64)
                        ),
                        (
                            "total_tokens".to_string(),
                            Json::Int(spec.total_tokens as i64)
                        ),
                    ]),
                ),
                ("prover".to_string(), prover_metrics_json(&metrics)),
            ])
            .render()
        );
        return Ok(ExitCode::SUCCESS);
    }
    println!("declarations: {}", program.decls.len());
    println!("attributes:   {}", scope.attr_count());
    println!("pivots:       {}", scope.pivots().len());
    println!("procedures:   {}", scope.procs().count());
    println!("impls:        {}", scope.impls().count());
    println!("spec overhead: {spec}");
    println!();
    print!("{metrics}");
    Ok(ExitCode::SUCCESS)
}

/// The `--json` rendering of aggregated prover telemetry.
fn prover_metrics_json(metrics: &datagroups::ProverMetrics) -> Json {
    Json::Object(vec![
        (
            "obligations".to_string(),
            Json::Int(metrics.obligations as i64),
        ),
        ("unknown".to_string(), Json::Int(metrics.unknown as i64)),
        ("instances".to_string(), Json::Int(metrics.instances as i64)),
        (
            "presat_instances".to_string(),
            Json::Int(metrics.presat_instances as i64),
        ),
        (
            "goal_instances".to_string(),
            Json::Int(metrics.goal_instances as i64),
        ),
        (
            "trigger_matches".to_string(),
            Json::Int(metrics.trigger_matches as i64),
        ),
        ("merges".to_string(), Json::Int(metrics.merges as i64)),
        ("branches".to_string(), Json::Int(metrics.branches as i64)),
        ("clauses".to_string(), Json::Int(metrics.clauses as i64)),
        ("deferred".to_string(), Json::Int(metrics.deferred as i64)),
        ("pops".to_string(), Json::Int(metrics.pops as i64)),
        (
            "undone_merges".to_string(),
            Json::Int(metrics.undone_merges as i64),
        ),
        (
            "trail_depth_max".to_string(),
            Json::Int(metrics.trail_depth_max as i64),
        ),
        (
            "sliced_axioms".to_string(),
            Json::Int(metrics.sliced_axioms as i64),
        ),
        (
            "by_kind".to_string(),
            Json::Object(
                metrics
                    .by_kind
                    .iter()
                    .map(|(kind, n)| (kind.as_str().to_string(), Json::Int(*n as i64)))
                    .collect(),
            ),
        ),
        (
            "obligation_kinds".to_string(),
            Json::Object(
                metrics
                    .obligation_kinds
                    .iter()
                    .map(|(kind, n)| (kind.as_str().to_string(), Json::Int(*n as i64)))
                    .collect(),
            ),
        ),
        (
            "hottest".to_string(),
            Json::Array(
                metrics
                    .hottest
                    .iter()
                    .map(|axiom| {
                        Json::Object(vec![
                            (
                                "kind".to_string(),
                                Json::Str(axiom.kind.as_str().to_string()),
                            ),
                            ("trigger".to_string(), Json::Str(axiom.trigger.clone())),
                            ("matches".to_string(), Json::Int(axiom.matches as i64)),
                            ("instances".to_string(), Json::Int(axiom.instances as i64)),
                            (
                                "presat".to_string(),
                                Json::Int(axiom.presat_instances as i64),
                            ),
                            ("goal".to_string(), Json::Int(axiom.goal_instances as i64)),
                            ("deferred".to_string(), Json::Int(axiom.deferred as i64)),
                            (
                                "obligations".to_string(),
                                Json::Int(axiom.obligations as i64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `oolong axioms` — the declared pattern-policy table of a program's
/// scope background, joined with where each axiom's instantiations landed
/// (pre-saturation vs obligation frames) when every implementation is
/// proved against the full (unsliced) background.
fn cmd_axioms(args: &[String]) -> Result<ExitCode, String> {
    let source = load_source(positional(args)?)?;
    let program = parse_program(&source).map_err(|e| e.render(&source))?;
    let checker = Checker::new(&program, check_options(args)?).map_err(|e| e.render(&source))?;
    let policies = checker.background_policies();
    let phases = checker.background_phases();

    // Per-axiom telemetry, summed over every obligation. Each VC is proved
    // against the full background so the per-quantifier rows line up with
    // the policy table by index — the slicer would renumber them.
    let n = policies.len();
    let (mut presat, mut goal, mut matches) = (vec![0i64; n], vec![0i64; n], vec![0i64; n]);
    let impl_ids: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
    for id in impl_ids {
        let Ok(vc) = checker.vc(id) else { continue };
        let full = BackgroundSlice {
            keep: vec![true; vc.background_hyps],
        };
        let mut ctx = checker.context_for_slice(&vc, &full);
        let verdict = checker.verdict_for_vc_in(&mut ctx, &vc, 0);
        let Some(stats) = verdict.stats() else {
            continue;
        };
        for (axiom, ((p, g), m)) in presat
            .iter_mut()
            .zip(goal.iter_mut())
            .zip(matches.iter_mut())
            .enumerate()
        {
            for q in &stats.per_quant {
                if ctx.background_quants(axiom).contains(&q.id) {
                    *p += q.presat_instances as i64;
                    *g += q.goal_instances as i64;
                    *m += q.matches as i64;
                }
            }
        }
    }

    let pats = |p: &oolong_logic::PatternPolicy| {
        p.triggers
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    let mpat = |p: &oolong_logic::PatternPolicy| {
        p.multi_patterns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    if flag(args, "--json") {
        let axioms = policies
            .iter()
            .enumerate()
            .map(|(i, (name, _, policy))| {
                Json::Object(vec![
                    ("name".to_string(), Json::Str(name.clone())),
                    (
                        "phase".to_string(),
                        Json::Str(phases[i].as_str().to_string()),
                    ),
                    (
                        "pats".to_string(),
                        Json::Array(pats(policy).into_iter().map(Json::Str).collect()),
                    ),
                    (
                        "mpat".to_string(),
                        Json::Array(mpat(policy).into_iter().map(Json::Str).collect()),
                    ),
                    ("presat".to_string(), Json::Int(presat[i])),
                    ("goal".to_string(), Json::Int(goal[i])),
                    ("matches".to_string(), Json::Int(matches[i])),
                ])
            })
            .collect();
        println!(
            "{}",
            Json::Object(vec![
                ("axioms".to_string(), Json::Array(axioms)),
                (
                    "totals".to_string(),
                    Json::Object(vec![
                        ("presat".to_string(), Json::Int(presat.iter().sum())),
                        ("goal".to_string(), Json::Int(goal.iter().sum())),
                    ]),
                ),
            ])
            .render()
        );
        return Ok(ExitCode::SUCCESS);
    }
    for (i, (name, _, policy)) in policies.iter().enumerate() {
        println!("{name} [{}]", phases[i]);
        for t in pats(policy) {
            println!("  PATS {t}");
        }
        for t in mpat(policy) {
            println!("  MPAT {t}");
        }
        println!(
            "  {} instances ({} presat + {} goal), {} matches",
            presat[i] + goal[i],
            presat[i],
            goal[i],
            matches[i]
        );
    }
    println!(
        "total: {} presat + {} goal instances across {} axioms",
        presat.iter().sum::<i64>(),
        goal.iter().sum::<i64>(),
        n
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_corpus() -> Result<ExitCode, String> {
    for p in oolong_corpus::all() {
        println!("{:<22} §{}", p.name, p.section);
    }
    Ok(ExitCode::SUCCESS)
}
