//! `oolong experiments` — runs every experiment of `DESIGN.md` and prints
//! the paper-vs-measured summary that `EXPERIMENTS.md` records.

use datagroups::{overhead, CheckOptions, Checker};
use oolong_interp::{ExecConfig, Interp, RngOracle, RunOutcome, WrongKind};
use oolong_prover::Budget;
use oolong_sema::{closure_for_impl, subset_program, Scope};
use oolong_syntax::{parse_program, Decl};
use std::time::Instant;

fn verdict(source: &str, proc: &str, naive: bool) -> String {
    let program = parse_program(source).expect("parses");
    let options = CheckOptions {
        naive,
        ..CheckOptions::default()
    };
    let report = Checker::new(&program, options)
        .expect("analyses")
        .check_all();
    report
        .for_proc(proc)
        .expect("checked")
        .verdict
        .label()
        .to_string()
}

/// Runs all experiments, printing one section per experiment id.
pub fn run_all() {
    let t0 = Instant::now();

    println!("## E1 — grammar (Figures 0-1)");
    let mut ok = 0;
    for p in oolong_corpus::all() {
        let program = parse_program(p.source).expect("parses");
        let printed = oolong_syntax::pretty::print_program(&program);
        assert!(parse_program(&printed).is_ok());
        ok += 1;
    }
    println!(
        "parsed + round-tripped {ok}/{} corpus programs\n",
        oolong_corpus::all().len()
    );

    println!("## E2 — pivot uniqueness (§3.0)");
    let q = oolong_corpus::paper::SECTION30_Q.source;
    let full = oolong_corpus::paper::SECTION30_FULL.source;
    println!(
        "restricted  q@interface={}  q@full={}  m@full={}",
        verdict(q, "q", false),
        verdict(full, "q", false),
        verdict(full, "m", false)
    );
    println!(
        "naive       q@interface={}  q@full={}  m@full={}\n",
        verdict(q, "q", true),
        verdict(full, "q", true),
        verdict(full, "m", true)
    );

    println!("## E3 — owner exclusion (§3.1)");
    let w = oolong_corpus::paper::SECTION31_W.source;
    let bad = oolong_corpus::paper::SECTION31_BAD_CALL.source;
    println!(
        "restricted  w@interface={}  w@full={}  bad_caller={}",
        verdict(w, "w", false),
        verdict(bad, "w", false),
        verdict(bad, "bad_caller", false)
    );
    println!(
        "naive       w@interface={}  bad_caller={}\n",
        verdict(w, "w", true),
        verdict(bad, "bad_caller", true)
    );

    println!("## E4/E5 — §5 examples 1-2");
    println!(
        "example1 p={}  example2 twice={}\n",
        verdict(oolong_corpus::paper::EXAMPLE1.source, "p", false),
        verdict(oolong_corpus::paper::EXAMPLE2.source, "twice", false)
    );

    println!("## E6 — cyclic rep inclusions (§5 example 3)");
    let e3 = oolong_corpus::paper::EXAMPLE3.source;
    let program = parse_program(e3).expect("parses");
    for (label, budget) in [("default", Budget::default()), ("starved", Budget::tiny())] {
        let options = CheckOptions {
            budget,
            ..CheckOptions::default()
        };
        let report = Checker::new(&program, options)
            .expect("analyses")
            .check_all();
        let rep = report.for_proc("updateAll").expect("checked");
        let stats = rep
            .verdict
            .stats()
            .map(ToString::to_string)
            .unwrap_or_default();
        println!("{label:>8}: {} [{stats}]", rep.verdict.label());
    }
    println!();

    println!("## E7 — scope monotonicity (modular vs whole-program)");
    let mut checked = 0;
    let mut stable = 0;
    for p in oolong_corpus::all() {
        let program = parse_program(p.source).expect("parses");
        let full_report = Checker::new(&program, CheckOptions::default())
            .expect("analyses")
            .check_all();
        // Modules of an arrays-level program are checked at that level.
        let arrays_level = p.source.contains("maps elem") || p.source.contains('[');
        for (i, decl) in program.decls.iter().enumerate() {
            let Decl::Impl(im) = decl else { continue };
            let sub = subset_program(&program, &closure_for_impl(&program, i));
            let options = CheckOptions {
                force_arrays_level: arrays_level,
                ..CheckOptions::default()
            };
            let small = Checker::new(&sub, options).expect("analyses").check_all();
            let small_v = small
                .for_proc(&im.name.text)
                .expect("checked")
                .verdict
                .is_verified();
            let full_v = full_report
                .for_proc(&im.name.text)
                .expect("checked")
                .verdict
                .is_verified();
            checked += 1;
            if !small_v || full_v {
                stable += 1;
            }
        }
    }
    println!(
        "{stable}/{checked} implementations keep their modular verdict in the whole program\n"
    );

    println!("## E8 — checker scaling on generated programs");
    for (label, cfg) in [
        ("small", oolong_corpus::GenConfig::default()),
        (
            "medium",
            oolong_corpus::GenConfig {
                groups: 5,
                fields: 9,
                procs: 7,
                impls: 6,
                body_len: 7,
                ..oolong_corpus::GenConfig::default()
            },
        ),
        (
            "large",
            oolong_corpus::GenConfig {
                groups: 8,
                fields: 14,
                procs: 10,
                impls: 9,
                body_len: 9,
                ..oolong_corpus::GenConfig::default()
            },
        ),
    ] {
        let source = oolong_corpus::generate_source(42, &cfg);
        let program = parse_program(&source).expect("parses");
        let t = Instant::now();
        let report = Checker::new(&program, CheckOptions::default())
            .expect("analyses")
            .check_all();
        let (v, r, u) = report.tally();
        println!(
            "{label:>7}: {} decls, {} impls -> {v} verified / {r} rejected / {u} unknown in {:?}",
            program.decls.len(),
            report.impls.len(),
            t.elapsed()
        );
    }
    println!();

    println!("## E9 — prover work profile per corpus program");
    for p in oolong_corpus::all() {
        let program = parse_program(p.source).expect("parses");
        let report = Checker::new(&program, CheckOptions::default())
            .expect("analyses")
            .check_all();
        for rep in &report.impls {
            if let Some(stats) = rep.verdict.stats() {
                println!("{:<20} {:<12} {}", p.name, rep.proc_name, stats);
            }
        }
    }
    println!();

    println!("## E10 — specification overhead (§6)");
    let mut spec = 0;
    let mut total = 0;
    for p in oolong_corpus::all() {
        let program = parse_program(p.source).expect("parses");
        let r = overhead(&program);
        println!("{:<20} {r}", p.name);
        spec += r.spec_tokens;
        total += r.total_tokens;
    }
    println!(
        "corpus-wide: {spec} of {total} tokens ({:.1}%)\n",
        100.0 * spec as f64 / total as f64
    );

    println!("## E11 — explicit modules (extension)");
    {
        let program = parse_program(oolong_corpus::paper::MODULAR_STACK.source).expect("parses");
        let report = datagroups::check_modular(&program, &CheckOptions::default())
            .expect("module structure valid");
        let ok = report.all_verified();
        println!(
            "modular check of `modular_stack`: {} ({} modules)\n",
            if ok { "all verified" } else { "FAILED" },
            report.modules.len()
        );
    }

    println!("## E12 — array dependencies (§6 future work, extension)");
    {
        let program = parse_program(oolong_corpus::paper::ARRAY_TABLE.source).expect("parses");
        let report = Checker::new(&program, CheckOptions::default())
            .expect("analyses")
            .check_all();
        for rep in &report.impls {
            let stats = rep
                .verdict
                .stats()
                .map(ToString::to_string)
                .unwrap_or_default();
            println!("{:<10} {} [{stats}]", rep.proc_name, rep.verdict.label());
        }
        println!();
    }

    println!("## runtime ground truth (§3.0 executable counterexample)");
    let whole = "
group contents
field cnt
field obj
proc push(st, o) modifies st.contents
proc setup(st, r) modifies st.contents, r.obj
proc q()
impl q() {
  var st, result, v, n in
    st := new() ; result := new() ; setup(st, result) ;
    v := result.obj ; assume v != null ; n := v.cnt ;
    push(st, 3) ; assert n = v.cnt
  end
}
field vec in contents maps cnt into contents
impl setup(st, r) { st.vec := new() ; r.obj := st.vec }
";
    let program = parse_program(whole).expect("parses");
    let scope = Scope::analyze(&program).expect("analyses");
    let mut failures = 0;
    for seed in 0..100 {
        let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
        if let RunOutcome::Wrong(wr) = interp.run_proc_fresh("q") {
            if wr.kind == WrongKind::AssertFailed {
                failures += 1;
            }
        }
    }
    println!("naive-approved program: {failures}/100 runs fail the §3.0 assertion at runtime\n");

    println!("total experiment time: {:?}", t0.elapsed());
}
