//! The paper's example programs, as an executable corpus.
//!
//! Sources are written in the ASCII concrete syntax of `oolong-syntax`.
//! Section references are to the PLDI 2002 paper.

/// A corpus entry: a named oolong program with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusProgram {
    /// Short identifier, e.g. `"section30_q"`.
    pub name: &'static str,
    /// Where in the paper the program comes from.
    pub section: &'static str,
    /// The oolong source text.
    pub source: &'static str,
}

/// §3.0 — the interface scope for procedure `q`: stacks and vectors with
/// *no* pivot declaration in scope. A modular checker in this scope should
/// verify `impl q` (the call `push(st, 3)` cannot affect `v.cnt`).
pub const SECTION30_Q: CorpusProgram = CorpusProgram {
    name: "section30_q",
    section: "3.0",
    source: "group contents
field cnt
field obj
proc push(st, o) modifies st.contents
proc m(st, r) modifies r.obj
proc q()
impl q() {
  var st, result, v, n in
    st := new() ;
    result := new() ;
    m(st, result) ;
    v := result.obj ;
    n := v.cnt ;
    push(st, 3) ;
    assert n = v.cnt
  end
}",
};

/// §3.0 — the private stack implementation: the pivot `vec` with the rep
/// inclusion `contents →vec cnt`, and the implementation of `m` that leaks
/// the pivot value (`r.obj := st.vec`). Pivot uniqueness must reject
/// `impl m`; with the restriction in force `impl q` stays verifiable even
/// in this larger scope (scope monotonicity).
pub const SECTION30_FULL: CorpusProgram = CorpusProgram {
    name: "section30_full",
    section: "3.0",
    source: "group contents
field cnt
field obj
proc push(st, o) modifies st.contents
proc m(st, r) modifies r.obj
proc q()
impl q() {
  var st, result, v, n in
    st := new() ;
    result := new() ;
    m(st, result) ;
    v := result.obj ;
    n := v.cnt ;
    push(st, 3) ;
    assert n = v.cnt
  end
}
field vec maps cnt into contents
impl m(st, r) { r.obj := st.vec }",
};

/// §3.1 — the implementation of `w`, which reads `v.cnt` around a
/// `push(st, 3)`. Owner exclusion (assumed on entry) makes it verifiable;
/// without owner exclusion it is unverifiable once the pivot is in scope
/// (the possibility `v = st.vec`).
pub const SECTION31_W: CorpusProgram = CorpusProgram {
    name: "section31_w",
    section: "3.1",
    source: "group contents
field cnt
proc push(st, o) modifies st.contents
proc w(st, v) modifies st.contents
impl w(st, v) {
  var n in
    n := v.cnt ;
    push(st, 3) ;
    assert n = v.cnt
  end
}",
};

/// §3.1 — the bad call site `w(st, st.vec)` from inside the private stack
/// implementation. Owner exclusion must reject the implementation of
/// `bad_caller` at the call.
pub const SECTION31_BAD_CALL: CorpusProgram = CorpusProgram {
    name: "section31_bad_call",
    section: "3.1",
    source: "group contents
field cnt
proc push(st, o) modifies st.contents
proc w(st, v) modifies st.contents
impl w(st, v) {
  var n in
    n := v.cnt ;
    push(st, 3) ;
    assert n = v.cnt
  end
}
field vec in contents maps cnt into contents
proc bad_caller(st) modifies st.contents
impl bad_caller(st) {
  st.vec := new() ;
  w(st, st.vec)
}",
};

/// §5, first example — chained designators in the modifies list:
/// `proc p(t) modifies t.c.d.g` calling `q(t.c.d)` and asserting `t.f`
/// unchanged.
pub const EXAMPLE1: CorpusProgram = CorpusProgram {
    name: "example1",
    section: "5 (first example)",
    source: "field c
field d
field f
group g
proc p(t) modifies t.c.d.g
proc q(u) modifies u.g
impl p(t) {
  assume t != null ;
  var y in
    y := t.f ;
    q(t.c.d) ;
    assert y = t.f
  end
}",
};

/// §5, second example — the swinging-pivots shape: `twice` calls `once`
/// twice under the same license.
pub const EXAMPLE2: CorpusProgram = CorpusProgram {
    name: "example2",
    section: "5 (second example)",
    source: "group g
proc once(t) modifies t.g
proc twice(t) modifies t.g
impl twice(t) {
  once(t) ;
  once(t)
}",
};

/// §5, third example — linked lists with the *cyclic* rep inclusion
/// `g →next g`. The paper reports its hand proof is simple but Simplify's
/// matching loops; our prover's fuel accounting measures the same
/// phenomenon.
pub const EXAMPLE3: CorpusProgram = CorpusProgram {
    name: "example3",
    section: "5 (third example)",
    source: "group g
field value in g
field next in g maps g into g
proc updateAll(t) modifies t.g
impl updateAll(t) {
  assume t != null ;
  t.value := t.value + 1 ;
  if t.next != null then
    updateAll(t.next)
  end
}",
};

/// §2 — the rational-number library sketch: `normalize` may change the
/// abstract `value`, whose representation (`num`, `den`) is private.
pub const RATIONAL: CorpusProgram = CorpusProgram {
    name: "rational",
    section: "2",
    source: "group value
proc normalize(r) modifies r.value
field num in value
field den in value
impl normalize(r) {
  assume r != null ;
  if r.den < 0 then
    r.num := 0 - r.num ;
    r.den := 0 - r.den
  end
}",
};

/// A complete stack-over-vector module of our own, in the paper's style:
/// the vector substrate (`cnt` in `elems`), the stack with its pivot
/// `vec`, and `push` implemented by delegating to the vector. Exercises
/// pivot allocation, delegation through a pivot, and owner exclusion at a
/// legal call (the callee `vgrow` has no license on the stack).
pub const STACK_MODULE: CorpusProgram = CorpusProgram {
    name: "stack_module",
    section: "2-3 (running example, completed)",
    source: "group elems
field cnt in elems
proc vinit(v) modifies v.elems
impl vinit(v) { assume v != null ; v.cnt := 0 }
proc vgrow(v) modifies v.elems
impl vgrow(v) { assume v != null ; v.cnt := v.cnt + 1 }
group contents
field vec in contents maps elems into contents
proc sinit(s) modifies s.contents
impl sinit(s) {
  assume s != null ;
  s.vec := new() ;
  vinit(s.vec)
}
proc push(s, o) modifies s.contents
impl push(s, o) {
  assume s != null && s.vec != null ;
  vgrow(s.vec)
}",
};

/// The stack-over-vector system expressed with the `module` extension:
/// interface and implementation modules with explicit imports, mirroring
/// how the paper describes scopes arising ("the scope of an implementation
/// module M would typically be the set of declarations in M and in the
/// interface modules that M transitively imports").
pub const MODULAR_STACK: CorpusProgram = CorpusProgram {
    name: "modular_stack",
    section: "4 (scopes from modules; module syntax is our extension)",
    source: "module vector_interface {
  group elems
  field cnt in elems
  proc vinit(v) modifies v.elems
  proc vgrow(v) modifies v.elems
}
module vector_impl imports vector_interface {
  impl vinit(v) { assume v != null ; v.cnt := 0 }
  impl vgrow(v) { assume v != null ; v.cnt := v.cnt + 1 }
}
module stack_interface {
  group contents
  proc sinit(s) modifies s.contents
  proc push(s, o) modifies s.contents
}
module stack_impl imports stack_interface, vector_interface {
  field vec in contents maps elems into contents
  impl sinit(s) {
    assume s != null ;
    s.vec := new() ;
    vinit(s.vec)
  }
  impl push(s, o) {
    assume s != null && s.vec != null ;
    vgrow(s.vec)
  }
}",
};

/// §6 future work, implemented: **array dependencies**. A table object is
/// implemented in terms of an array of bucket objects: the elem-pivot
/// declaration `field buckets in state maps elem bucketstate into state`
/// includes every slot of the buckets array, and the `bucketstate` of
/// every element, in the table's `state` group.
pub const ARRAY_TABLE: CorpusProgram = CorpusProgram {
    name: "array_table",
    section: "6 (future work: array dependencies; our extension)",
    source: "group state
group bucketstate
field count in bucketstate
field buckets in state maps elem bucketstate into state
proc binc(b) modifies b.bucketstate
impl binc(b) {
  assume b != null ;
  if b.count = null then
    b.count := 1
  else
    b.count := b.count + 1
  end
}
proc tinit(t) modifies t.state
impl tinit(t) {
  assume t != null ;
  t.buckets := new() ;
  t.buckets[0] := new() ;
  t.buckets[1] := new()
}
proc touch(t, i) modifies t.state
impl touch(t, i) {
  assume t != null && i >= 0 && t.buckets != null && t.buckets[i] != null ;
  binc(t.buckets[i])
}
proc touch_direct(t, i) modifies t.state
impl touch_direct(t, i) {
  assume t != null && i >= 0 && t.buckets != null && t.buckets[i] != null ;
  t.buckets[i].count := 1
}
proc observer(t, x) modifies t.state
impl observer(t, x) {
  assume t != null && x != null ;
  var n in
    n := x.count ;
    touch(t, 0) ;
    assert n = x.count
  end
}",
};

/// Capstone program combining both extensions: an *event registry* whose
/// interface and implementation are explicit modules, and whose state is
/// an array of listener records (an elem-pivot). Exercises modules,
/// arrays, delegation through interfaces, and element-frame reasoning in
/// one system.
pub const REGISTRY: CorpusProgram = CorpusProgram {
    name: "registry",
    section: "extensions combined (modules + array dependencies)",
    source: "module listener_interface {
  group lstate
  field fired in lstate
  proc notify(l) modifies l.lstate
}
module listener_impl imports listener_interface {
  impl notify(l) { assume l != null ; l.fired := 1 }
}
module registry_interface imports listener_interface {
  group rstate
  proc rinit(r) modifies r.rstate
  proc subscribe(r, i) modifies r.rstate
  proc fire_first(r) modifies r.rstate
}
module registry_impl imports registry_interface {
  field listeners in rstate maps elem lstate into rstate
  impl rinit(r) {
    assume r != null ;
    r.listeners := new()
  }
  impl subscribe(r, i) {
    assume r != null && i >= 0 && r.listeners != null ;
    r.listeners[i] := new()
  }
  impl fire_first(r) {
    assume r != null && r.listeners != null && r.listeners[0] != null ;
    r.listeners[0].fired := 1
  }
}",
};

/// All paper-derived corpus programs.
pub fn all() -> Vec<CorpusProgram> {
    vec![
        SECTION30_Q,
        SECTION30_FULL,
        SECTION31_W,
        SECTION31_BAD_CALL,
        EXAMPLE1,
        EXAMPLE2,
        EXAMPLE3,
        RATIONAL,
        STACK_MODULE,
        MODULAR_STACK,
        ARRAY_TABLE,
        REGISTRY,
    ]
}

/// Looks up a corpus program by name.
pub fn by_name(name: &str) -> Option<CorpusProgram> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_sema::Scope;
    use oolong_syntax::parse_program;

    #[test]
    fn every_corpus_program_parses_and_analyses() {
        for p in all() {
            let program = parse_program(p.source)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", p.name));
            Scope::analyze(&program).unwrap_or_else(|e| panic!("{} fails analysis: {e}", p.name));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("example1").unwrap().section, "5 (first example)");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn section30_full_extends_section30_q() {
        assert!(SECTION30_FULL.source.starts_with(SECTION30_Q.source));
    }
}
