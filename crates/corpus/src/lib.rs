//! Example programs and program generators for the oolong checker.
//!
//! [`paper`] contains the programs of the PLDI 2002 paper (Sections 2, 3,
//! and 5) in executable form; [`generate`] produces random well-formed
//! programs for property testing and scaling benchmarks.
//!
//! # Example
//!
//! ```
//! use oolong_corpus::paper;
//! use oolong_syntax::parse_program;
//!
//! let q = paper::SECTION30_Q;
//! assert!(parse_program(q.source).is_ok());
//! assert_eq!(q.section, "3.0");
//! ```

pub mod generate;
pub mod paper;

pub use generate::{
    extend_source, generate_branchy_source, generate_cyclic_source, generate_invariant_source,
    generate_read_effect_source, generate_seeded_violation_source, generate_seeded_violation_with,
    generate_source, generate_unannotated_source, GenConfig, SeededBug, SeededViolation,
    TruthFrame, UnannotatedConfig, UnannotatedProgram,
};
pub use paper::{all, by_name, CorpusProgram};
