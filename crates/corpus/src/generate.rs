//! Random well-formed oolong program generation, for property tests and
//! scaling benchmarks.
//!
//! Generated programs always pass `Scope::analyze` (this is asserted by
//! tests). Two knobs shape the population:
//!
//! * `respect_restrictions` — comply with pivot uniqueness syntactically
//!   (no pivot reads into variables, no copying of formals, pivots
//!   assigned only `new()`/`null`);
//! * `licensed_writes_only` — bias field writes toward locations the
//!   enclosing procedure's modifies list licenses, producing a population
//!   where the checker has something to verify rather than reject.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Shape parameters for generated programs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of data groups.
    pub groups: usize,
    /// Number of object fields.
    pub fields: usize,
    /// Probability that a field is declared as a pivot.
    pub pivot_fraction: f64,
    /// Number of procedures.
    pub procs: usize,
    /// Number of implementations (over random procedures).
    pub impls: usize,
    /// Approximate commands per implementation body.
    pub body_len: usize,
    /// Comply with the pivot uniqueness restriction.
    pub respect_restrictions: bool,
    /// Only write fields the procedure's modifies list licenses.
    pub licensed_writes_only: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            groups: 3,
            fields: 5,
            pivot_fraction: 0.25,
            procs: 4,
            impls: 3,
            body_len: 5,
            respect_restrictions: true,
            licensed_writes_only: true,
        }
    }
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    group_names: Vec<String>,
    /// (name, enclosing groups (direct), is_pivot)
    fields: Vec<(String, Vec<usize>, bool)>,
    /// (name, param count, modifies: (param, attr name))
    #[allow(clippy::type_complexity)]
    procs: Vec<(String, usize, Vec<(usize, String)>)>,
    /// For licensed writes: per group index, the transitively included
    /// field names.
    group_fields: Vec<Vec<String>>,
}

/// Generates the source text of a random well-formed program.
pub fn generate_source(seed: u64, cfg: &GenConfig) -> String {
    let mut gen = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg: cfg.clone(),
        group_names: Vec::new(),
        fields: Vec::new(),
        procs: Vec::new(),
        group_fields: Vec::new(),
    };
    gen.run()
}

/// Generates source text for an *extension* of a base program produced by
/// [`generate_source`]: the base text followed by additional declarations
/// (new groups, fields — possibly pivots — procedures, and
/// implementations). The result is a strict superset scope, as needed by
/// the scope-monotonicity experiment (E7).
pub fn extend_source(base: &str, seed: u64, cfg: &GenConfig) -> String {
    let mut ext_cfg = cfg.clone();
    ext_cfg.groups = (cfg.groups / 2).max(1);
    ext_cfg.fields = (cfg.fields / 2).max(1);
    ext_cfg.procs = (cfg.procs / 2).max(1);
    ext_cfg.impls = (cfg.impls / 2).max(1);
    let mut gen = Gen {
        rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(17)),
        cfg: ext_cfg,
        group_names: Vec::new(),
        fields: Vec::new(),
        procs: Vec::new(),
        group_fields: Vec::new(),
    };
    // Re-derive the base declarations so extension clauses can reference
    // them; names are deterministic, so reparse from the base text.
    gen.absorb_base(base);
    let ext = gen.run_extension();
    format!("{base}\n{ext}")
}

/// Generates the source text of a random program whose rep inclusions form
/// a *cycle* — the shape of the paper's §5 third example (`field next in g
/// maps g into g`), where an object's representation includes the
/// representation of another object of the same shape, transitively
/// through an unbounded heap chain.
///
/// These programs are correct (every write and call is licensed by the
/// modifies clause through the cyclic pivot, exactly as in §5), but their
/// rep-inclusion axioms admit endless instantiation chains: a starved
/// prover budget must yield `Unknown` — never a refutation — and the
/// divergence attribution should rank a rep-inclusion axiom among the
/// culprits. The differential soundness suite is the consumer.
///
/// The seed varies the cycle length (1–3 groups) and benign body
/// decoration; every generated program parses and analyses (asserted by
/// tests).
pub fn generate_cyclic_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let cycle = rng.gen_range(1..=3usize);
    let mut out = String::new();
    for i in 0..cycle {
        let _ = writeln!(out, "group g{i}");
    }
    for i in 0..cycle {
        // `n{i}` closes the cycle: the rep of the next shape's group is
        // part of this one's, and after the last link, back to the first.
        let next = (i + 1) % cycle;
        let _ = writeln!(out, "field v{i} in g{i}");
        let _ = writeln!(out, "field n{i} in g{i} maps g{next} into g{i}");
    }
    for i in 0..cycle {
        let _ = writeln!(out, "proc touch{i}(t) modifies t.g{i}");
    }
    for i in 0..cycle {
        let next = (i + 1) % cycle;
        let _ = writeln!(out, "impl touch{i}(t) {{");
        let _ = writeln!(out, "  assume t != null ;");
        if rng.gen_bool(0.5) {
            let _ = writeln!(out, "  skip ;");
        }
        let bump = rng.gen_range(1..=3);
        let _ = writeln!(out, "  t.v{i} := t.v{i} + {bump} ;");
        if rng.gen_bool(0.3) {
            let _ = writeln!(out, "  t.v{i} := 0 - t.v{i} ;");
        }
        let _ = writeln!(out, "  if t.n{i} != null then");
        let _ = writeln!(out, "    touch{next}(t.n{i})");
        let _ = writeln!(out, "  end");
        out.push_str("}\n");
    }
    out
}

/// Generates the source text of a *branch-heavy* program: a single
/// implementation whose body is a chain of `depth` guarded choices, each
/// bumping a field by one of two distinct amounts, followed by an assert
/// that holds on every path.
///
/// `wlp` turns each choice into a conjunction of both arms, so the negated
/// verification condition is a disjunction tree with `2^depth` leaves —
/// the prover must case-split through all of them, making these programs
/// the stress population for backtracking-search benchmarks (E15) and the
/// trail-vs-clone differential suite. The seed varies the bump amounts
/// and benign decoration; the branch structure depends only on `depth`.
pub fn generate_branchy_source(seed: u64, depth: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    let _ = writeln!(out, "group g");
    let _ = writeln!(out, "field v in g");
    let _ = writeln!(out, "field w in g");
    let _ = writeln!(out, "proc branchy(t) modifies t.g");
    let _ = writeln!(out, "impl branchy(t) {{");
    let _ = writeln!(out, "  assume t != null ;");
    let _ = writeln!(out, "  t.v := 0 ;");
    for _ in 0..depth {
        // Both bumps are positive, so the running sum is nonzero on
        // every one of the 2^depth paths and the final assert closes.
        let a = rng.gen_range(1..=3);
        let b = rng.gen_range(4..=6);
        let _ = writeln!(out, "  {{ t.v := t.v + {a} [] t.v := t.v + {b} }} ;");
    }
    if rng.gen_bool(0.5) {
        let _ = writeln!(out, "  skip ;");
    }
    let _ = writeln!(out, "  assert t.v != 0");
    out.push_str("}\n");
    out
}

/// Generates the source text of a correct program exercising *object
/// invariants*: a declared invariant over a guarded field, and an
/// implementation that re-establishes it before every exit (plus,
/// sometimes, a caller whose call boundaries must observe it).
///
/// Every generated program verifies: the only write to the constrained
/// field restores the declared value, every other command touches an
/// unconstrained sibling, and all writes are licensed by `modifies t.g`.
/// The seed varies the invariant's constant, benign body decoration, and
/// whether the call-boundary obligation appears at all.
pub fn generate_invariant_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x94d0_49bb).wrapping_add(7));
    let bound = rng.gen_range(0..3);
    let mut out = String::new();
    let _ = writeln!(out, "group g");
    let _ = writeln!(out, "field v in g");
    let _ = writeln!(out, "field c in g");
    let _ = writeln!(out, "invariant this.c = {bound}");
    let _ = writeln!(out, "proc keep(t) modifies t.g");
    let with_caller = rng.gen_bool(0.5);
    if with_caller {
        let _ = writeln!(out, "proc relay(t) modifies t.g");
    }
    let _ = writeln!(out, "impl keep(t) {{");
    let _ = writeln!(out, "  assume t != null ;");
    for _ in 0..rng.gen_range(1..=3usize) {
        let bump = rng.gen_range(1..=4);
        let _ = writeln!(out, "  t.v := t.v + {bump} ;");
    }
    if rng.gen_bool(0.5) {
        let _ = writeln!(out, "  skip ;");
    }
    let _ = writeln!(out, "  t.c := {bound}");
    out.push_str("}\n");
    if with_caller {
        // The call boundary inside `relay` carries its own
        // invariant-preserved obligation, discharged from the entry
        // hypothesis (nothing is written before the call).
        let _ = writeln!(out, "impl relay(t) {{");
        let _ = writeln!(out, "  assume t != null ;");
        let _ = writeln!(out, "  keep(t)");
        out.push_str("}\n");
    }
    out
}

/// Generates the source text of a correct program exercising *read
/// effects*: a procedure declaring `reads t.g` whose every heap
/// dereference stays inside the declared frame (an ungrouped sibling
/// field is declared but never read).
///
/// Every generated program verifies — the read licenses discharge through
/// the `read-frame-inc-reflexive` background axiom — so the population
/// stresses exactly the goal-directed activation path the reads machinery
/// added. The seed varies the body's read/write mix and decoration.
pub fn generate_read_effect_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_f491).wrapping_add(11));
    let mut out = String::new();
    let _ = writeln!(out, "group g");
    let _ = writeln!(out, "field v in g");
    let _ = writeln!(out, "field w in g");
    let _ = writeln!(out, "field u");
    let _ = writeln!(out, "proc sum(t) modifies t.g reads t.g");
    let _ = writeln!(out, "impl sum(t) {{");
    let _ = writeln!(out, "  assume t != null ;");
    for _ in 0..rng.gen_range(1..=3usize) {
        if rng.gen_bool(0.5) {
            let _ = writeln!(out, "  t.v := t.v + t.w ;");
        } else {
            let bump = rng.gen_range(1..=4);
            let _ = writeln!(out, "  t.w := t.w + {bump} ;");
        }
    }
    if rng.gen_bool(0.5) {
        let _ = writeln!(out, "  skip ;");
    }
    let _ = writeln!(out, "  t.v := t.v + t.w");
    out.push_str("}\n");
    out
}

/// One seeded effect-discipline bug kind, for diagnosis-accuracy tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// A write to a field whose `in` clause was forgotten (it belongs to
    /// no group, so the procedure's group license never covers it):
    /// refuted as a modifies violation at the write.
    ForgottenIn,
    /// A call whose callee's modifies entry the caller's downward closure
    /// does not cover: refuted as a modifies violation at the call.
    MissingClosureMember,
    /// A copy of a pivot value into a sibling field: rejected by the
    /// syntactic pivot-uniqueness restriction at the copy.
    StrayPivotWrite,
    /// A heap read of an ungrouped field inside a procedure declaring
    /// `reads t.g`: refuted as a reads violation at the dereference.
    UncoveredRead,
    /// A licensed write that leaves a declared object invariant false at
    /// exit: refuted as an invariant-preservation failure, blamed on the
    /// invariant declaration.
    BrokenInvariant,
}

impl SeededBug {
    /// Every bug kind, in the order `seed % 5` selects them.
    pub const ALL: [SeededBug; 5] = [
        SeededBug::ForgottenIn,
        SeededBug::MissingClosureMember,
        SeededBug::StrayPivotWrite,
        SeededBug::UncoveredRead,
        SeededBug::BrokenInvariant,
    ];

    /// The obligation-kind string a correct diagnosis must report.
    pub fn expected_kind(self) -> &'static str {
        match self {
            SeededBug::ForgottenIn | SeededBug::MissingClosureMember => "modifies-violation",
            SeededBug::StrayPivotWrite => "pivot-uniqueness",
            SeededBug::UncoveredRead => "reads-violation",
            SeededBug::BrokenInvariant => "invariant-preserved",
        }
    }
}

/// A generated program carrying exactly one seeded violation, with the
/// ground-truth blame location recorded: the injected command for most
/// bug kinds, the invariant *declaration* for [`SeededBug::BrokenInvariant`]
/// (invariant diagnoses anchor where the broken property is stated).
#[derive(Debug, Clone)]
pub struct SeededViolation {
    /// The program text.
    pub source: String,
    /// Name of the (single) implemented procedure containing the bug.
    pub proc_name: String,
    /// Which bug was injected.
    pub bug: SeededBug,
    /// Byte offset of the ground-truth blame span within `source`.
    pub start: u32,
    /// Byte offset one past the ground-truth blame span.
    pub end: u32,
}

impl SeededViolation {
    /// The ground-truth blame span's text.
    pub fn snippet(&self) -> &str {
        &self.source[self.start as usize..self.end as usize]
    }
}

/// Generates a program with one seeded violation; the bug kind cycles
/// with `seed % 5` and the surrounding (licensed, correct) decoy commands
/// vary with the seed.
pub fn generate_seeded_violation_source(seed: u64) -> SeededViolation {
    generate_seeded_violation_with(seed, SeededBug::ALL[(seed as usize) % SeededBug::ALL.len()])
}

/// Generates a program with one seeded violation of a chosen kind.
///
/// The backbone is always correct: field `a` lives in group `g`, the
/// implemented procedure is licensed to modify `t.g`, and every decoy
/// command writes `t.a`. The injection is the only ill-behaved command,
/// so the diagnosis must blame exactly the recorded span.
pub fn generate_seeded_violation_with(seed: u64, bug: SeededBug) -> SeededViolation {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5851_f42d).wrapping_add(1));
    let mut out = String::new();
    let (mut start, mut end) = (0u32, 0u32);
    let _ = writeln!(out, "group g");
    let _ = writeln!(out, "field a in g");
    // The forgotten `in` clause: `b` belongs to no group, so the license
    // `modifies t.g` never covers it (and `reads t.g` never covers a
    // read of it).
    let _ = writeln!(out, "field b");
    let _ = writeln!(out, "field p in g maps g into g");
    if bug == SeededBug::BrokenInvariant {
        // A grouped field the invariant constrains: the injected write to
        // it is *licensed*, so the only failing obligation is the
        // invariant's preservation. The declaration is the ground truth.
        let _ = writeln!(out, "field c in g");
        start = out.len() as u32;
        let _ = write!(out, "invariant this.c = 0");
        end = out.len() as u32;
        out.push('\n');
    }
    let _ = writeln!(out, "proc helper(u) modifies u.b");
    if bug == SeededBug::UncoveredRead {
        // The declared read frame the injected dereference escapes.
        let _ = writeln!(out, "proc seeded(t) modifies t.g reads t.g");
    } else {
        let _ = writeln!(out, "proc seeded(t) modifies t.g");
    }
    let _ = writeln!(out, "impl seeded(t) {{");

    let mut cmds: Vec<(String, bool)> = Vec::new();
    for _ in 0..rng.gen_range(0..3usize) {
        cmds.push((format!("t.a := {}", rng.gen_range(0..9)), false));
    }
    if bug == SeededBug::StrayPivotWrite {
        // Seed the pivot so the stray copy duplicates a real object at
        // run time (making the violation dynamically confirmable).
        cmds.push(("t.p := new()".to_string(), false));
    }
    let injected = match bug {
        SeededBug::ForgottenIn => format!("t.b := {}", rng.gen_range(0..9)),
        SeededBug::MissingClosureMember => "helper(t)".to_string(),
        SeededBug::StrayPivotWrite => "t.a := t.p".to_string(),
        // The write is licensed (`a` is in `g`); the *read* of the
        // ungrouped `b` escapes the declared `reads t.g` frame.
        SeededBug::UncoveredRead => "t.a := t.b".to_string(),
        // Licensed write (`c` is in `g`) that falsifies `this.c = 0`.
        SeededBug::BrokenInvariant => "t.c := 1".to_string(),
    };
    cmds.push((injected, true));
    // Trailing decoys stay away from `a` for the pivot bug: overwriting
    // `t.a` would erase the duplicated pivot value before the end-of-run
    // uniqueness audit, making the violation dynamically unconfirmable.
    if bug != SeededBug::StrayPivotWrite {
        for _ in 0..rng.gen_range(0..2usize) {
            cmds.push((format!("t.a := {}", rng.gen_range(0..9)), false));
        }
    }

    // For the invariant bug the blame span was already recorded at the
    // declaration; every other kind is blamed at the injected command.
    let blame_cmd = bug != SeededBug::BrokenInvariant;
    for (i, (cmd, is_bug)) in cmds.iter().enumerate() {
        out.push_str("  ");
        if *is_bug && blame_cmd {
            start = out.len() as u32;
        }
        out.push_str(cmd);
        if *is_bug && blame_cmd {
            end = out.len() as u32;
        }
        if i + 1 < cmds.len() {
            out.push_str(" ;");
        }
        out.push('\n');
    }
    out.push_str("}\n");
    SeededViolation {
        source: out,
        proc_name: "seeded".to_string(),
        bug,
        start,
        end,
    }
}

impl Gen {
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.gen_range(0..items.len())]
    }

    fn run(&mut self) -> String {
        let mut out = String::new();
        self.gen_groups(&mut out, "g");
        self.gen_fields(&mut out, "f");
        self.compute_group_fields();
        self.gen_procs(&mut out, "p");
        let impl_count = self.cfg.impls;
        for i in 0..impl_count {
            self.gen_impl(&mut out, i);
        }
        out
    }

    fn run_extension(&mut self) -> String {
        let mut out = String::new();
        self.gen_groups(&mut out, "xg");
        self.gen_fields(&mut out, "xf");
        self.compute_group_fields();
        self.gen_procs(&mut out, "xp");
        let impl_count = self.cfg.impls;
        for i in 0..impl_count {
            self.gen_impl(&mut out, i);
        }
        out
    }

    /// Reconstructs the declaration tables from a previously generated
    /// base program (names and clauses are parsed back).
    fn absorb_base(&mut self, base: &str) {
        let program = oolong_syntax::parse_program(base).expect("base text parses");
        for g in program.groups() {
            self.group_names.push(g.name.text.clone());
        }
        for f in program.fields() {
            let includes = f
                .includes
                .iter()
                .filter_map(|i| self.group_names.iter().position(|g| g == &i.text))
                .collect();
            self.fields
                .push((f.name.text.clone(), includes, f.is_pivot()));
        }
        for p in program.procs() {
            let modifies = p
                .modifies
                .iter()
                .filter_map(|e| {
                    let (root, path) = e.as_designator_chain()?;
                    let param = p.params.iter().position(|q| q.text == root.text)?;
                    Some((param, path.last()?.text.clone()))
                })
                .collect();
            self.procs
                .push((p.name.text.clone(), p.params.len(), modifies));
        }
    }

    fn gen_groups(&mut self, out: &mut String, prefix: &str) {
        let start = self.group_names.len();
        for i in 0..self.cfg.groups {
            let name = format!("{prefix}{i}");
            let _ = write!(out, "group {name}");
            // `in` edges only to earlier groups: acyclic by construction.
            if !self.group_names.is_empty() && self.rng.gen_bool(0.4) {
                let target = self.pick(&self.group_names.clone()).clone();
                let _ = write!(out, " in {target}");
            }
            out.push('\n');
            self.group_names.push(name);
            let _ = start;
        }
    }

    fn gen_fields(&mut self, out: &mut String, prefix: &str) {
        for i in 0..self.cfg.fields {
            let name = format!("{prefix}{i}");
            let _ = write!(out, "field {name}");
            let mut includes = Vec::new();
            if !self.group_names.is_empty() && self.rng.gen_bool(0.7) {
                let gi = self.rng.gen_range(0..self.group_names.len());
                let _ = write!(out, " in {}", self.group_names[gi]);
                includes.push(gi);
            }
            let mut pivot = false;
            if !self.group_names.is_empty()
                && self.rng.gen_bool(self.cfg.pivot_fraction)
                && (!self.fields.is_empty() || !self.group_names.is_empty())
            {
                // maps <attr> into <group>.
                let mapped = if !self.fields.is_empty() && self.rng.gen_bool(0.5) {
                    self.fields[self.rng.gen_range(0..self.fields.len())]
                        .0
                        .clone()
                } else {
                    self.pick(&self.group_names.clone()).clone()
                };
                let into = self.pick(&self.group_names.clone()).clone();
                let _ = write!(out, " maps {mapped} into {into}");
                pivot = true;
            }
            out.push('\n');
            self.fields.push((name, includes, pivot));
        }
    }

    /// For each group, the field names transitively included in it.
    fn compute_group_fields(&mut self) {
        // Group-to-group edges are only recoverable from names during
        // generation; approximate with the direct field memberships, which
        // is all licensed-write biasing needs.
        self.group_fields = vec![Vec::new(); self.group_names.len()];
        for (name, includes, _) in &self.fields {
            for &g in includes {
                self.group_fields[g].push(name.clone());
            }
        }
    }

    fn gen_procs(&mut self, out: &mut String, prefix: &str) {
        for i in 0..self.cfg.procs {
            let name = format!("{prefix}{i}");
            let params = self.rng.gen_range(1..=2);
            let param_names: Vec<String> = (0..params).map(|j| format!("t{j}")).collect();
            let _ = write!(out, "proc {name}({})", param_names.join(", "));
            let mut modifies = Vec::new();
            let entries = self.rng.gen_range(0..=2);
            let mut attrs: Vec<String> = self.group_names.clone();
            attrs.extend(self.fields.iter().map(|(n, _, _)| n.clone()));
            if !attrs.is_empty() {
                for _ in 0..entries {
                    let param = self.rng.gen_range(0..params);
                    let attr = self.pick(&attrs).clone();
                    modifies.push((param, attr));
                }
            }
            if !modifies.is_empty() {
                let rendered: Vec<String> =
                    modifies.iter().map(|(p, a)| format!("t{p}.{a}")).collect();
                let _ = write!(out, " modifies {}", rendered.join(", "));
            }
            out.push('\n');
            self.procs.push((name, params, modifies));
        }
    }

    fn gen_impl(&mut self, out: &mut String, salt: usize) {
        if self.procs.is_empty() {
            return;
        }
        let pi = self.rng.gen_range(0..self.procs.len());
        let (name, params, modifies) = self.procs[pi].clone();
        let param_names: Vec<String> = (0..params).map(|j| format!("t{j}")).collect();
        let _ = writeln!(out, "impl {name}({}) {{", param_names.join(", "));
        // Two locals: `fresh` is allocated once and never overwritten (so
        // it stays provably fresh — freely modifiable and safely passable
        // at licensed callee positions); `scratch` absorbs reads.
        let fresh_local = format!("v{salt}f");
        let scratch = format!("v{salt}s");
        let _ = writeln!(out, "  var {fresh_local}, {scratch} in");
        let body = self.gen_body(&param_names, &fresh_local, &scratch, &modifies);
        let _ = writeln!(out, "    {body}");
        let _ = writeln!(out, "  end");
        out.push_str("}\n");
    }

    /// The fields this procedure may write on a given parameter, derived
    /// from its modifies list (directly licensed fields plus members of
    /// licensed groups).
    fn licensed_fields(&self, modifies: &[(usize, String)], param: usize) -> Vec<String> {
        let mut fields = Vec::new();
        for (p, attr) in modifies {
            if *p != param {
                continue;
            }
            if self.fields.iter().any(|(n, _, _)| n == attr) {
                fields.push(attr.clone());
            }
            if let Some(g) = self.group_names.iter().position(|g| g == attr) {
                fields.extend(self.group_fields[g].iter().cloned());
            }
        }
        fields
    }

    fn gen_body(
        &mut self,
        params: &[String],
        fresh_local: &str,
        scratch: &str,
        modifies: &[(usize, String)],
    ) -> String {
        let mut cmds = Vec::new();
        cmds.push(format!("{fresh_local} := new()"));
        cmds.push(format!("{scratch} := new()"));
        for _ in 0..self.cfg.body_len {
            cmds.push(self.gen_cmd(params, fresh_local, scratch, modifies));
        }
        cmds.join(" ;\n    ")
    }

    fn gen_cmd(
        &mut self,
        params: &[String],
        fresh_local: &str,
        scratch: &str,
        modifies: &[(usize, String)],
    ) -> String {
        let local = scratch;
        let non_pivot_fields: Vec<String> = self
            .fields
            .iter()
            .filter(|(_, _, pivot)| !pivot)
            .map(|(n, _, _)| n.clone())
            .collect();
        match self.rng.gen_range(0..10) {
            0 => "skip".to_string(),
            1 => format!("assert {local} != null"),
            2 => {
                let p = self.pick(params).clone();
                format!("assume {p} != null")
            }
            3..=5 => {
                // A field write.
                let param_idx = self.rng.gen_range(0..params.len());
                let target_fields = if self.cfg.licensed_writes_only {
                    self.licensed_fields(modifies, param_idx)
                } else {
                    let mut all: Vec<String> =
                        self.fields.iter().map(|(n, _, _)| n.clone()).collect();
                    all.sort();
                    all
                };
                if target_fields.is_empty() {
                    // Fall back to writing the fresh local, always allowed.
                    if non_pivot_fields.is_empty() {
                        return "skip".to_string();
                    }
                    let f = self.pick(&non_pivot_fields).clone();
                    return format!("{fresh_local}.{f} := 1");
                }
                let f = self.pick(&target_fields).clone();
                let is_pivot = self.fields.iter().any(|(n, _, p)| n == &f && *p);
                let target = format!("{}.{f}", params[param_idx]);
                if is_pivot {
                    if self.rng.gen_bool(0.5) {
                        format!("{target} := new()")
                    } else {
                        format!("{target} := null")
                    }
                } else {
                    let value = match self.rng.gen_range(0..3) {
                        0 => "null".to_string(),
                        1 => self.rng.gen_range(0..5i32).to_string(),
                        _ => local.to_string(),
                    };
                    if self.cfg.respect_restrictions {
                        format!("{target} := {value}")
                    } else {
                        // Occasionally break pivot uniqueness: copy a formal.
                        if self.rng.gen_bool(0.3) {
                            format!("{target} := {}", self.pick(params).clone())
                        } else {
                            format!("{target} := {value}")
                        }
                    }
                }
            }
            6 | 7 => {
                // A call. At positions the callee's modifies list names,
                // pass the provably-fresh local when biasing toward
                // verifiable programs (fresh objects are freely
                // modifiable); elsewhere anything goes.
                if self.procs.is_empty() {
                    return "skip".to_string();
                }
                let (callee, arity, callee_mods) = self.pick(&self.procs.clone()).clone();
                let args: Vec<String> = (0..arity)
                    .map(|pos| {
                        let licensed_pos = callee_mods.iter().any(|(p, _)| *p == pos);
                        if licensed_pos && self.cfg.licensed_writes_only {
                            fresh_local.to_string()
                        } else {
                            match self.rng.gen_range(0..3) {
                                0 => "null".to_string(),
                                1 => self.pick(params).clone(),
                                _ => local.to_string(),
                            }
                        }
                    })
                    .collect();
                format!("{callee}({})", args.join(", "))
            }
            8 => {
                // A guarded choice of two simple commands.
                format!("{{ skip [] assert {local} != null }}")
            }
            _ => {
                // A read into the local (non-pivot only under restrictions).
                if non_pivot_fields.is_empty() {
                    return "skip".to_string();
                }
                let f = self.pick(&non_pivot_fields).clone();
                let p = self.pick(params).clone();
                if self.cfg.respect_restrictions {
                    format!("assume {p} != null ; {local} := {p}.{f}")
                } else {
                    format!("assume {p} != null ; {local} := {p}")
                }
            }
        }
    }
}

/// Shape parameters for [`generate_unannotated_source`].
#[derive(Debug, Clone)]
pub struct UnannotatedConfig {
    /// Number of data groups declared.
    pub groups: usize,
    /// Number of object fields declared.
    pub fields: usize,
    /// Number of procedures (each with an implementation).
    pub procs: usize,
    /// Keep the `in` clauses in the stripped source (only `modifies`
    /// lists are erased). With the group structure intact, ground-truth
    /// frames stay at the data-group level and exercise group lifting;
    /// without it, ground truth is the concrete field footprint.
    pub keep_includes: bool,
}

impl Default for UnannotatedConfig {
    fn default() -> Self {
        UnannotatedConfig {
            groups: 3,
            fields: 6,
            procs: 5,
            keep_includes: false,
        }
    }
}

/// The erased ground-truth frame of one generated procedure: modifies
/// entries as `(parameter index, attribute path)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthFrame {
    /// Procedure name.
    pub proc: String,
    /// Ground-truth modifies entries, sorted.
    pub entries: Vec<(usize, Vec<String>)>,
}

/// A generated program with its annotations stripped and the erased
/// ground truth recorded — the inference-accuracy workload.
#[derive(Debug, Clone)]
pub struct UnannotatedProgram {
    /// Stable unit name, `unannotated-<seed>`.
    pub name: String,
    /// The stripped source (no `modifies` clauses; no `in` clauses unless
    /// `keep_includes`).
    pub source: String,
    /// The fully annotated original (verifies as generated).
    pub annotated: String,
    /// Erased ground-truth frames, one per procedure, in name order.
    pub truth: Vec<TruthFrame>,
    /// Erased `(field, group)` memberships (empty with `keep_includes`).
    pub erased_includes: Vec<(String, String)>,
}

/// Generates an annotated program whose bodies exercise exactly their
/// declared frames, then erases the annotations and records them as
/// ground truth.
///
/// Construction guarantees the annotated program verifies: every direct
/// write is licensed by the procedure's own entry, every call passes
/// formals whose frames are unions of the callees' (the call graph is a
/// DAG resolved bottom-up), and there are no pivots, so the alias
/// restrictions are vacuous. A procedure whose per-parameter footprint
/// covers *all* member fields of a group is annotated with the group
/// entry (the smallest covering group); leftover fields stay field-level
/// entries — mirroring the minimality the inference subsystem aims for.
pub fn generate_unannotated_source(seed: u64, cfg: &UnannotatedConfig) -> UnannotatedProgram {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xA11F));
    let groups: Vec<String> = (0..cfg.groups.max(1)).map(|i| format!("g{i}")).collect();
    let fields: Vec<String> = (0..cfg.fields.max(2)).map(|i| format!("f{i}")).collect();
    // Each field joins at most one group; some stay ungrouped so field-level
    // entries appear in the ground truth too.
    let membership: Vec<Option<usize>> = (0..fields.len())
        .map(|_| {
            if rng.gen_bool(0.7) {
                Some(rng.gen_range(0..groups.len()))
            } else {
                None
            }
        })
        .collect();
    let members_of = |g: usize| -> Vec<usize> {
        membership
            .iter()
            .enumerate()
            .filter(|(_, m)| **m == Some(g))
            .map(|(f, _)| f)
            .collect()
    };

    // Plan procedures: params, direct writes per param, calls to earlier
    // procedures (a DAG, so footprints resolve bottom-up in one pass).
    struct Plan {
        params: usize,
        /// field indices directly written per param, with allocation flag
        direct: Vec<Vec<(usize, bool)>>,
        /// (callee index, caller-param per callee-param)
        calls: Vec<(usize, Vec<usize>)>,
        /// resolved footprint: field indices per param
        footprint: Vec<std::collections::BTreeSet<usize>>,
        /// fresh-local noise: field index written through a fresh local
        noise: Option<usize>,
    }
    let nprocs = cfg.procs.max(1);
    let mut plans: Vec<Plan> = Vec::with_capacity(nprocs);
    for i in 0..nprocs {
        let params = 1 + rng.gen_range(0..2usize);
        let mut direct: Vec<Vec<(usize, bool)>> = vec![Vec::new(); params];
        for d in direct.iter_mut() {
            if rng.gen_bool(0.5) {
                // Group-complete intent: write every member field of a
                // non-empty group, making the group the smallest cover.
                let g = rng.gen_range(0..groups.len());
                let members = members_of(g);
                if !members.is_empty() {
                    for f in members {
                        d.push((f, rng.gen_bool(0.25)));
                    }
                    continue;
                }
            }
            for _ in 0..1 + rng.gen_range(0..2usize) {
                d.push((rng.gen_range(0..fields.len()), rng.gen_bool(0.25)));
            }
        }
        let mut calls = Vec::new();
        if i > 0 && rng.gen_bool(0.6) {
            let callee = rng.gen_range(0..i);
            // Callee parameters get *distinct* caller parameters: passing
            // the same object twice aliases the callee's per-parameter
            // frames, and the checker (rightly) refuses to prove the
            // resulting owner-exclusion obligations. A callee with more
            // parameters than the caller has is simply not called.
            if plans[callee].params <= params {
                let mut avail: Vec<usize> = (0..params).collect();
                let mapping: Vec<usize> = (0..plans[callee].params)
                    .map(|_| avail.remove(rng.gen_range(0..avail.len())))
                    .collect();
                calls.push((callee, mapping));
            }
        }
        let mut footprint: Vec<std::collections::BTreeSet<usize>> = direct
            .iter()
            .map(|d| d.iter().map(|&(f, _)| f).collect())
            .collect();
        for (callee, mapping) in &calls {
            for (callee_param, &caller_param) in mapping.iter().enumerate() {
                let extra: Vec<usize> = plans[*callee].footprint[callee_param]
                    .iter()
                    .copied()
                    .collect();
                footprint[caller_param].extend(extra);
            }
        }
        let noise = if rng.gen_bool(0.4) {
            Some(rng.gen_range(0..fields.len()))
        } else {
            None
        };
        plans.push(Plan {
            params,
            direct,
            calls,
            footprint,
            noise,
        });
    }

    // Annotated modifies entries: lift complete member sets to the group
    // (largest groups first), keep the rest field-level.
    let entries_for = |footprint: &[std::collections::BTreeSet<usize>]| {
        let mut entries: Vec<(usize, Vec<String>)> = Vec::new();
        for (param, written) in footprint.iter().enumerate() {
            let mut remaining = written.clone();
            let mut lifts: Vec<(usize, Vec<usize>)> = (0..groups.len())
                .map(|g| (g, members_of(g)))
                .filter(|(_, m)| !m.is_empty())
                .collect();
            lifts.sort_by_key(|(g, m)| (usize::MAX - m.len(), *g));
            for (g, members) in lifts {
                if members.iter().all(|f| remaining.contains(f)) {
                    for f in &members {
                        remaining.remove(f);
                    }
                    entries.push((param, vec![groups[g].clone()]));
                }
            }
            for f in remaining {
                entries.push((param, vec![fields[f].clone()]));
            }
        }
        entries.sort();
        entries
    };
    // A group entry licenses everything below it, but owner exclusion at
    // a call transfers pointwise by entry *identity*: the obligation for
    // a callee entry is a conjunct of the caller's assumed exclusion only
    // when the caller's own list carries that entry verbatim. So a caller
    // keeps its callees' entries alongside the lifted groups (the DAG is
    // resolved bottom-up, callees first).
    let mut all_entries: Vec<Vec<(usize, Vec<String>)>> = Vec::with_capacity(plans.len());
    for plan in &plans {
        let mut entries = entries_for(&plan.footprint);
        for (callee, mapping) in &plan.calls {
            for (callee_param, path) in &all_entries[*callee] {
                let e = (mapping[*callee_param], path.clone());
                if !entries.contains(&e) {
                    entries.push(e);
                }
            }
        }
        entries.sort();
        all_entries.push(entries);
    }

    // Render both versions.
    let render = |strip: bool| -> String {
        let mut out = String::new();
        for g in &groups {
            let _ = writeln!(out, "group {g}");
        }
        for (f, m) in fields.iter().zip(&membership) {
            match m {
                Some(g) if !strip || cfg.keep_includes => {
                    let _ = writeln!(out, "field {f} in {}", groups[*g]);
                }
                _ => {
                    let _ = writeln!(out, "field {f}");
                }
            }
        }
        for (i, plan) in plans.iter().enumerate() {
            let params: Vec<String> = (0..plan.params).map(|k| format!("t{k}")).collect();
            let mut decl = format!("proc p{i}({})", params.join(", "));
            if !strip {
                let rendered: Vec<String> = all_entries[i]
                    .iter()
                    .map(|(param, path)| format!("{}.{}", params[*param], path.join(".")))
                    .collect();
                if !rendered.is_empty() {
                    let _ = write!(decl, " modifies {}", rendered.join(", "));
                }
            }
            let _ = writeln!(out, "{decl}");
            let mut cmds: Vec<String> = Vec::new();
            // Calls first: a call's license obligations are discharged in
            // the initial heap. Emitting them after field updates makes the
            // prover re-derive every license under the accumulated heap
            // stores, which blows up case splits exponentially in the
            // number of preceding writes.
            for (callee, mapping) in &plan.calls {
                let args: Vec<String> = mapping.iter().map(|&p| format!("t{p}")).collect();
                cmds.push(format!("p{callee}({})", args.join(", ")));
            }
            for (param, writes) in plan.direct.iter().enumerate() {
                for &(f, alloc) in writes {
                    if alloc {
                        cmds.push(format!("t{param}.{} := new()", fields[f]));
                    } else {
                        cmds.push(format!("t{param}.{} := {}", fields[f], f % 7));
                    }
                }
            }
            // Fresh-local noise: writes through a provably fresh local need
            // no license and must not leak into the inferred frame.
            if let Some(f) = plan.noise {
                cmds.push(format!(
                    "var v{i} in v{i} := new() ; v{i}.{} := 1 end",
                    fields[f]
                ));
            }
            let _ = writeln!(out, "impl p{i}({}) {{", params.join(", "));
            let _ = writeln!(out, "  {}", cmds.join(" ;\n  "));
            let _ = writeln!(out, "}}");
        }
        out
    };
    let annotated = render(false);
    let source = render(true);

    // Ground truth: against the *stripped* scope. With includes erased the
    // group entries have no members to cover, so truth is the concrete
    // field footprint; with includes kept the lifted entries are exact.
    let truth: Vec<TruthFrame> = plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            let entries = if cfg.keep_includes {
                all_entries[i].clone()
            } else {
                let mut es: Vec<(usize, Vec<String>)> = plan
                    .footprint
                    .iter()
                    .enumerate()
                    .flat_map(|(param, ws)| {
                        let fields = &fields;
                        ws.iter().map(move |&f| (param, vec![fields[f].clone()]))
                    })
                    .collect();
                es.sort();
                es
            };
            TruthFrame {
                proc: format!("p{i}"),
                entries,
            }
        })
        .collect();
    let erased_includes = if cfg.keep_includes {
        Vec::new()
    } else {
        fields
            .iter()
            .zip(&membership)
            .filter_map(|(f, m)| m.map(|g| (f.clone(), groups[g].clone())))
            .collect()
    };

    UnannotatedProgram {
        name: format!("unannotated-{seed}"),
        source,
        annotated,
        truth,
        erased_includes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_sema::Scope;
    use oolong_syntax::parse_program;

    #[test]
    fn generated_programs_are_well_formed() {
        for seed in 0..50 {
            let src = generate_source(seed, &GenConfig::default());
            let program = parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed} fails to parse: {e}\n{src}"));
            Scope::analyze(&program)
                .unwrap_or_else(|e| panic!("seed {seed} fails analysis: {e}\n{src}"));
        }
    }

    #[test]
    fn unrestricted_programs_are_still_well_formed() {
        let cfg = GenConfig {
            respect_restrictions: false,
            licensed_writes_only: false,
            ..GenConfig::default()
        };
        for seed in 0..30 {
            let src = generate_source(seed, &cfg);
            let program = parse_program(&src).expect("parses");
            Scope::analyze(&program)
                .unwrap_or_else(|e| panic!("seed {seed} fails analysis: {e}\n{src}"));
        }
    }

    #[test]
    fn extensions_are_supersets_and_well_formed() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let base = generate_source(seed, &cfg);
            let ext = extend_source(&base, seed + 1, &cfg);
            assert!(ext.starts_with(&base));
            let program = parse_program(&ext)
                .unwrap_or_else(|e| panic!("seed {seed} extension fails to parse: {e}\n{ext}"));
            Scope::analyze(&program)
                .unwrap_or_else(|e| panic!("seed {seed} extension fails analysis: {e}\n{ext}"));
        }
    }

    #[test]
    fn cyclic_programs_are_well_formed() {
        for seed in 0..20 {
            let src = generate_cyclic_source(seed);
            let program = parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed} fails to parse: {e}\n{src}"));
            Scope::analyze(&program)
                .unwrap_or_else(|e| panic!("seed {seed} fails analysis: {e}\n{src}"));
            assert!(src.contains("maps"), "the pivot cycle is present");
        }
    }

    #[test]
    fn cyclic_generation_is_deterministic() {
        assert_eq!(generate_cyclic_source(3), generate_cyclic_source(3));
    }

    #[test]
    fn branchy_programs_are_well_formed() {
        for seed in 0..10 {
            let depth = 1 + (seed as usize % 6);
            let src = generate_branchy_source(seed, depth);
            let program = parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed} fails to parse: {e}\n{src}"));
            Scope::analyze(&program)
                .unwrap_or_else(|e| panic!("seed {seed} fails analysis: {e}\n{src}"));
            assert_eq!(src.matches("[]").count(), depth);
        }
    }

    #[test]
    fn branchy_generation_is_deterministic() {
        assert_eq!(generate_branchy_source(5, 4), generate_branchy_source(5, 4));
    }

    #[test]
    fn seeded_violations_are_well_formed_with_accurate_spans() {
        for seed in 0..30 {
            let v = generate_seeded_violation_source(seed);
            let program = parse_program(&v.source)
                .unwrap_or_else(|e| panic!("seed {seed} fails to parse: {e}\n{}", v.source));
            Scope::analyze(&program)
                .unwrap_or_else(|e| panic!("seed {seed} fails analysis: {e}\n{}", v.source));
            assert!(v.start < v.end, "seed {seed} recorded an empty span");
            let expected = match v.bug {
                SeededBug::ForgottenIn => "t.b :=",
                SeededBug::MissingClosureMember => "helper(t)",
                SeededBug::StrayPivotWrite => "t.a := t.p",
                SeededBug::UncoveredRead => "t.a := t.b",
                SeededBug::BrokenInvariant => "invariant this.c = 0",
            };
            assert!(
                v.snippet().starts_with(expected),
                "seed {seed}: snippet {:?} does not start with {expected:?}",
                v.snippet()
            );
        }
    }

    #[test]
    fn seeded_violation_covers_every_bug_kind() {
        for (i, bug) in SeededBug::ALL.iter().enumerate() {
            let v = generate_seeded_violation_source(i as u64);
            assert_eq!(v.bug, *bug);
        }
    }

    #[test]
    fn invariant_programs_are_well_formed() {
        for seed in 0..20 {
            let src = generate_invariant_source(seed);
            let program = parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed} fails to parse: {e}\n{src}"));
            Scope::analyze(&program)
                .unwrap_or_else(|e| panic!("seed {seed} fails analysis: {e}\n{src}"));
            assert!(src.contains("invariant this.c ="));
        }
        assert_eq!(generate_invariant_source(4), generate_invariant_source(4));
    }

    #[test]
    fn read_effect_programs_are_well_formed() {
        for seed in 0..20 {
            let src = generate_read_effect_source(seed);
            let program = parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed} fails to parse: {e}\n{src}"));
            Scope::analyze(&program)
                .unwrap_or_else(|e| panic!("seed {seed} fails analysis: {e}\n{src}"));
            assert!(src.contains("reads t.g"));
        }
        assert_eq!(
            generate_read_effect_source(4),
            generate_read_effect_source(4)
        );
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = generate_seeded_violation_source(9);
        let b = generate_seeded_violation_source(9);
        assert_eq!(a.source, b.source);
        assert_eq!((a.start, a.end), (b.start, b.end));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(generate_source(7, &cfg), generate_source(7, &cfg));
        assert_ne!(generate_source(7, &cfg), generate_source(8, &cfg));
    }

    #[test]
    fn size_scales_with_config() {
        let small = generate_source(1, &GenConfig::default());
        let big = generate_source(
            1,
            &GenConfig {
                groups: 10,
                fields: 20,
                procs: 12,
                impls: 10,
                body_len: 12,
                ..GenConfig::default()
            },
        );
        assert!(big.len() > small.len() * 2);
    }
}
