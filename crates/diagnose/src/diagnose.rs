//! Assembling a [`Diagnosis`]: the source-level explanation of a refuted
//! obligation, validated by interpreter replay.

use crate::concretize::concretize;
use crate::replay::{replay_plan, replay_restriction, Replay};
use datagroups::{ObligationKind, Refutation, Vc};
use oolong_sema::{ImplId, Scope};
use oolong_syntax::{Diagnostic, LineMap, Span};

/// A source-level explanation of one rejected implementation: which
/// clause is violated, where, through which locations, and on what
/// concrete initial store — with the interpreter's verdict on whether the
/// counterexample is real.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// Name of the implemented procedure.
    pub proc_name: String,
    /// The violated obligation's kind.
    pub kind: ObligationKind,
    /// Id of the position label that landed on the refuting branch, when
    /// the rejection came from a VC (restriction violations have none).
    pub label_id: Option<u32>,
    /// Byte span of the offending command.
    pub span: Span,
    /// One-based line of the offending command.
    pub line: u32,
    /// One-based column of the offending command.
    pub col: u32,
    /// The source text under the span.
    pub snippet: String,
    /// Description of the violated clause.
    pub clause: String,
    /// Determined inclusion-relation entries of the refuting branch: the
    /// location chain the license check walked.
    pub touched: Vec<String>,
    /// The concrete initial store (rendered writes), from concretization.
    pub pre_store: Vec<String>,
    /// The concrete argument values.
    pub args: Vec<String>,
    /// The interpreter's verdict on the counterexample.
    pub replay: Replay,
}

impl Diagnosis {
    /// Whether replay dynamically confirmed the counterexample.
    pub fn confirmed(&self) -> bool {
        self.replay.is_confirmed()
    }
}

/// Renders the true inclusion entries of the model as a location chain.
fn touched_chain(refutation: &Refutation) -> Vec<String> {
    let Some(model) = &refutation.model else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for rel in &model.relations {
        if rel.sym != "PInc" || rel.value != Some(true) {
            continue;
        }
        // Inc(store, obj, attr, obj2, attr2): obj·attr ≽ obj2·attr2.
        if let [_, obj, attr, obj2, attr2] = rel.args[..] {
            let repr = |i: usize| model.classes[i].repr.to_string();
            out.push(format!(
                "{}·{} ≽ {}·{}",
                repr(obj),
                repr(attr),
                repr(obj2),
                repr(attr2)
            ));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Diagnoses a refuted verification condition: resolves the primary
/// position label to its source command, concretizes the candidate
/// model, and replays it through the interpreter.
///
/// Returns `None` when the refutation carries no position label (which
/// over labelled VCs means the prover refuted a frame or equality
/// conjunct — not an obligation we can attribute).
pub fn diagnose_refutation(
    scope: &Scope,
    source: &str,
    vc: &Vc,
    refutation: &Refutation,
) -> Option<Diagnosis> {
    let primary = refutation.primary.clone()?;
    let plan = match &refutation.model {
        Some(model) => {
            let params = scope
                .proc_info(scope.impl_info(vc.impl_id).proc)
                .params
                .clone();
            concretize(scope, model, &params)
        }
        None => crate::concretize::PreStorePlan::default(),
    };
    let (replay, pre_store, args) = replay_plan(scope, vc.impl_id, &plan, primary.kind);
    let lc = LineMap::new(source).line_col(primary.span.start);
    Some(Diagnosis {
        proc_name: vc.proc_name.clone(),
        kind: primary.kind,
        label_id: Some(primary.id),
        span: primary.span,
        line: lc.line,
        col: lc.col,
        snippet: primary.span.snippet(source).to_string(),
        clause: primary.detail,
        touched: touched_chain(refutation),
        pre_store,
        args,
        replay,
    })
}

/// Diagnoses a pivot-uniqueness restriction violation (syntactic, no VC):
/// points at the first violation's span and validates dynamically via the
/// store audit.
pub fn diagnose_restriction(
    scope: &Scope,
    source: &str,
    impl_id: ImplId,
    proc_name: &str,
    violations: &[Diagnostic],
) -> Option<Diagnosis> {
    let first = violations.first()?;
    let lc = LineMap::new(source).line_col(first.span.start);
    Some(Diagnosis {
        proc_name: proc_name.to_string(),
        kind: ObligationKind::PivotUniqueness,
        label_id: None,
        span: first.span,
        line: lc.line,
        col: lc.col,
        snippet: first.span.snippet(source).to_string(),
        clause: first.message.clone(),
        touched: Vec::new(),
        pre_store: Vec::new(),
        args: Vec::new(),
        replay: replay_restriction(scope, impl_id),
    })
}
