//! Counterexample extraction and source-level diagnosis.
//!
//! A refuted verification condition by itself says only *that* an
//! implementation may violate its specification. This crate turns the
//! prover's evidence into an actionable explanation, in three steps:
//!
//! * **concretization** ([`concretize`]) — the saturated open branch the
//!   prover exports as a [`oolong_prover::CandidateModel`] (E-class
//!   partition, disequalities, `select` function graph) is solved into a
//!   concrete initial object store and argument values: one distinct
//!   object per object-sorted E-class, field and slot writes from the
//!   initial-store `select` entries;
//! * **replay** ([`replay`]) — the implementation is executed on that
//!   store by `oolong-interp` under its runtime side-effect monitor. A
//!   dynamic violation of the predicted kind *confirms* the
//!   counterexample; if every replay completes cleanly the finding is
//!   demoted to "spurious (prover-internal)";
//! * **rendering** ([`diagnose`]) — the violated clause, the offending
//!   command's source span (via the position labels `oolong-core::vcgen`
//!   embeds in each obligation conjunct), the touched location chain
//!   through the inclusion relation, and the concrete pre-store are
//!   packaged as a [`Diagnosis`].
//!
//! The analogous treatment for ESC-lineage checkers labels VC subformulas
//! (`LBLPOS`) and reads error traces out of Simplify's countermodel; the
//! interpreter replay is this reproduction's twist — we have an
//! operational ground truth and use it as the final arbiter.

pub mod concretize;
pub mod diagnose;
pub mod replay;

pub use concretize::{ClassValue, PreStorePlan};
pub use diagnose::{diagnose_refutation, diagnose_restriction, Diagnosis};
pub use replay::{replay_plan, replay_restriction, Replay};
