//! Dynamic validation of candidate counterexamples: materialize the
//! concretized pre-store, run the implementation under the interpreter's
//! side-effect monitor, and check whether the predicted violation
//! actually happens.

use crate::concretize::{ClassValue, PreStorePlan};
use datagroups::ObligationKind;
use oolong_interp::{
    audit_pivot_uniqueness, ExecConfig, FirstOracle, Interp, Loc, Oracle, RngOracle, RunOutcome,
    Store, Value, WrongKind,
};
use oolong_sema::{ImplId, Scope};

/// The outcome of replaying a candidate counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Replay {
    /// The interpreter reproduced a dynamic violation of the predicted
    /// kind on the concretized pre-store.
    Confirmed {
        /// Which oracle produced the witness run.
        oracle: String,
        /// The interpreter's description of what went wrong.
        witness: String,
    },
    /// Every replay completed, blocked, or failed differently: the
    /// refutation looks prover-internal rather than a real execution.
    Spurious {
        /// How many runs were attempted.
        attempts: usize,
    },
    /// Replay could not be attempted.
    Unavailable {
        /// Why not.
        reason: String,
    },
}

impl Replay {
    /// Whether the counterexample was dynamically confirmed.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, Replay::Confirmed { .. })
    }
}

/// How many seeded random oracles to try after the deterministic one.
const RNG_ATTEMPTS: u64 = 8;

/// The dynamic [`WrongKind`] each obligation kind predicts.
fn expected_wrong(kind: ObligationKind) -> Option<WrongKind> {
    match kind {
        ObligationKind::ModifiesViolation => Some(WrongKind::EffectViolation),
        ObligationKind::OwnerExclusion => Some(WrongKind::OwnerExclusion),
        ObligationKind::Assert => Some(WrongKind::AssertFailed),
        ObligationKind::PivotUniqueness => None,
        ObligationKind::ReadsViolation => Some(WrongKind::ReadViolation),
        ObligationKind::InvariantPreserved => Some(WrongKind::InvariantBroken),
    }
}

fn config_for(kind: ObligationKind) -> ExecConfig {
    ExecConfig {
        check_owner_exclusion: matches!(kind, ObligationKind::OwnerExclusion),
        check_reads: matches!(kind, ObligationKind::ReadsViolation),
        check_invariants: matches!(kind, ObligationKind::InvariantPreserved),
        ..ExecConfig::default()
    }
}

/// Materializes `plan` into `store`: allocates one distinct object per
/// object-sorted class, performs the planned writes, and resolves the
/// argument values. Returns `(per-class values, args)`.
fn materialize(plan: &PreStorePlan, store: &mut Store) -> (Vec<Option<Value>>, Vec<Value>) {
    let values: Vec<Option<Value>> = plan
        .class_values
        .iter()
        .map(|cv| match cv {
            ClassValue::Int(i) => Some(Value::Int(*i)),
            ClassValue::Bool(b) => Some(Value::Bool(*b)),
            ClassValue::Null => Some(Value::Null),
            ClassValue::Object => Some(Value::Obj(store.alloc())),
            ClassValue::Store | ClassValue::AttrName(_) => None,
        })
        .collect();
    let args = plan
        .args
        .iter()
        .map(|slot| match slot {
            Some(idx) => values[*idx].unwrap_or(Value::Null),
            None => Value::Obj(store.alloc()),
        })
        .collect();
    (values, args)
}

/// Renders the materialized pre-store and argument values for display.
fn render_pre(
    scope: &Scope,
    plan: &PreStorePlan,
    values: &[Option<Value>],
    args: &[Value],
    params: &[String],
) -> (Vec<String>, Vec<String>) {
    let show = |v: &Value| v.to_string();
    let mut pre = Vec::new();
    for (obj, attr, val) in &plan.field_writes {
        if let (Some(o), Some(v)) = (values[*obj], values[*val]) {
            let _ = scope; // attr names were validated during planning
            pre.push(format!("{}.{attr} = {}", show(&o), show(&v)));
        }
    }
    for (obj, idx, val) in &plan.slot_writes {
        if let (Some(o), Some(v)) = (values[*obj], values[*val]) {
            pre.push(format!("{}[{idx}] = {}", show(&o), show(&v)));
        }
    }
    pre.sort();
    let rendered_args = params
        .iter()
        .zip(args.iter())
        .map(|(p, v)| format!("{p} = {}", show(v)))
        .collect();
    (pre, rendered_args)
}

/// Applies the planned writes to the store. Writes whose object class was
/// not materialized (e.g. the branch equated it with null) are skipped.
fn apply_writes(scope: &Scope, plan: &PreStorePlan, values: &[Option<Value>], store: &mut Store) {
    for (obj, attr, val) in &plan.field_writes {
        let (Some(Value::Obj(o)), Some(attr_id)) = (values[*obj], scope.attr(attr)) else {
            continue;
        };
        let v = values[*val].unwrap_or(Value::Null);
        store.write(
            Loc {
                obj: o,
                attr: attr_id,
            },
            v,
        );
    }
    for (obj, idx, val) in &plan.slot_writes {
        let Some(Value::Obj(o)) = values[*obj] else {
            continue;
        };
        let v = values[*val].unwrap_or(Value::Null);
        store.write_slot(o, *idx, v);
    }
}

/// One replay run under a specific oracle. Returns the outcome.
fn run_once<O: Oracle>(
    scope: &Scope,
    impl_id: ImplId,
    plan: &PreStorePlan,
    kind: ObligationKind,
    oracle: O,
) -> (RunOutcome, Vec<Option<Value>>, Vec<Value>) {
    let mut interp = Interp::new(scope, config_for(kind), oracle);
    let (values, args) = materialize(plan, interp.store_mut());
    apply_writes(scope, plan, &values, interp.store_mut());
    let outcome = interp.run_impl(impl_id, &args);
    (outcome, values, args)
}

/// Replays a concretized counterexample: the deterministic oracle first,
/// then seeded random oracles (nondeterministic choice and havoc may need
/// several tries to drive execution down the refuted path). Returns the
/// replay verdict plus the rendered pre-store and argument values of the
/// first (deterministic) run.
pub fn replay_plan(
    scope: &Scope,
    impl_id: ImplId,
    plan: &PreStorePlan,
    kind: ObligationKind,
) -> (Replay, Vec<String>, Vec<String>) {
    let Some(expected) = expected_wrong(kind) else {
        return (
            Replay::Unavailable {
                reason: "pivot uniqueness is checked syntactically, not via a VC".into(),
            },
            Vec::new(),
            Vec::new(),
        );
    };
    let params: Vec<String> = {
        let info = scope.impl_info(impl_id);
        scope.proc_info(info.proc).params.clone()
    };

    let (first_outcome, values, args) = run_once(scope, impl_id, plan, kind, FirstOracle);
    let (pre, rendered_args) = render_pre(scope, plan, &values, &args, &params);
    if let RunOutcome::Wrong(w) = &first_outcome {
        if w.kind == expected {
            return (
                Replay::Confirmed {
                    oracle: "first".into(),
                    witness: w.to_string(),
                },
                pre,
                rendered_args,
            );
        }
    }
    let mut attempts = 1;
    for seed in 0..RNG_ATTEMPTS {
        attempts += 1;
        let (outcome, _, _) = run_once(scope, impl_id, plan, kind, RngOracle::seeded(seed));
        if let RunOutcome::Wrong(w) = &outcome {
            if w.kind == expected {
                return (
                    Replay::Confirmed {
                        oracle: format!("rng(seed={seed})"),
                        witness: w.to_string(),
                    },
                    pre,
                    rendered_args,
                );
            }
        }
    }
    (Replay::Spurious { attempts }, pre, rendered_args)
}

/// Dynamic confirmation for a *pivot-uniqueness* restriction violation:
/// run the implementation on fresh arguments and audit the resulting
/// store for the uniqueness invariant.
pub fn replay_restriction(scope: &Scope, impl_id: ImplId) -> Replay {
    let mut attempts = 0;
    for seed in 0..=RNG_ATTEMPTS {
        attempts += 1;
        let mut interp = Interp::new(scope, ExecConfig::default(), RngOracle::seeded(seed));
        let info = interp_params(scope, impl_id);
        let args: Vec<Value> = (0..info)
            .map(|_| Value::Obj(interp.store_mut().alloc()))
            .collect();
        // Pre-seed every pivot field of every argument with a distinct
        // fresh object: a leaked pivot *value* only trips the uniqueness
        // audit when it is non-null (copying a null pivot is invisible).
        for &arg in &args {
            let Value::Obj(obj) = arg else { continue };
            for &f in &scope.pivots() {
                let fresh = interp.store_mut().alloc();
                interp
                    .store_mut()
                    .write(Loc { obj, attr: f }, Value::Obj(fresh));
            }
        }
        let outcome = interp.run_impl(impl_id, &args);
        if matches!(outcome, RunOutcome::Completed | RunOutcome::Wrong(_)) {
            if let Err(witness) = audit_pivot_uniqueness(scope, interp.store()) {
                return Replay::Confirmed {
                    oracle: format!("rng(seed={seed})"),
                    witness,
                };
            }
        }
    }
    Replay::Spurious { attempts }
}

fn interp_params(scope: &Scope, impl_id: ImplId) -> usize {
    let info = scope.impl_info(impl_id);
    scope.proc_info(info.proc).params.len()
}
