//! Solving a [`CandidateModel`] into a concrete initial object store.
//!
//! The prover's open branch determines a finite partition of ground terms
//! into E-classes, some with interpreted values, plus `select` entries
//! describing the initial store's contents. Concretization assigns every
//! class a runtime value — the interpreted constant where the branch
//! fixed one, a *distinct* fresh object for every object-sorted class
//! (distinctness is consistent: classes the branch required equal are the
//! same class, and the branch's disequalities only ever separate classes)
//! — and turns the initial-store `select` entries into field and slot
//! writes.

use oolong_logic::{Cst, STORE, STORE0};
use oolong_prover::CandidateModel;
use oolong_sema::Scope;

/// The planned runtime value of one E-class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassValue {
    /// An interpreted integer.
    Int(i64),
    /// An interpreted boolean.
    Bool(bool),
    /// The null reference.
    Null,
    /// A distinct object, allocated at materialization time.
    Object,
    /// The store itself (no runtime value).
    Store,
    /// An attribute-name constant (no runtime value).
    AttrName(String),
}

/// A concretized candidate model: per-class value plan plus the initial
/// store's contents, all by class index into the model.
#[derive(Debug, Clone, Default)]
pub struct PreStorePlan {
    /// Value plan per E-class, parallel to `model.classes`.
    pub class_values: Vec<ClassValue>,
    /// Field writes `(object class, attribute name, value class)`.
    pub field_writes: Vec<(usize, String, usize)>,
    /// Slot writes `(object class, index, value class)`.
    pub slot_writes: Vec<(usize, i64, usize)>,
    /// Per-parameter class index; `None` means the parameter never
    /// appeared on the branch and gets a fresh object.
    pub args: Vec<Option<usize>>,
}

/// Synthetic value for integer-sorted classes the branch left
/// unconstrained: large enough not to collide with the small literals
/// programs use, offset by class index so distinct classes stay distinct.
const UNCONSTRAINED_INT_BASE: i64 = 1000;

/// Builds the concretization plan for `model`, for an implementation of a
/// procedure with parameters `params`.
pub fn concretize(scope: &Scope, model: &CandidateModel, params: &[String]) -> PreStorePlan {
    let n = model.classes.len();

    // Integer-sorted classes without an interpreted value (the branch
    // asserted isInt but never pinned a literal).
    let mut is_int = vec![false; n];
    for rel in &model.relations {
        if rel.sym == "PIsInt" && rel.value == Some(true) {
            if let Some(&c) = rel.args.first() {
                if c < n {
                    is_int[c] = true;
                }
            }
        }
    }

    // Store classes: whichever classes contain the store constants `$`
    // or `$0` (the entry hypothesis `$ = $0` usually merges them).
    let is_store = |idx: usize| {
        model.classes[idx]
            .members
            .iter()
            .any(|m| m.is_var(STORE) || m.is_var(STORE0))
    };

    let mut class_values = Vec::with_capacity(n);
    for (idx, class) in model.classes.iter().enumerate() {
        let value = match &class.value {
            Some(Cst::Int(i)) => ClassValue::Int(*i),
            Some(Cst::Bool(b)) => ClassValue::Bool(*b),
            Some(Cst::Null) => ClassValue::Null,
            Some(Cst::Attr(a)) => ClassValue::AttrName(a.to_string()),
            None if is_store(idx) => ClassValue::Store,
            None if is_int[idx] => ClassValue::Int(UNCONSTRAINED_INT_BASE + idx as i64),
            // Everything else — parameters, skolem constants, select
            // results — is object-sorted as far as the branch cares.
            None => ClassValue::Object,
        };
        class_values.push(value);
    }

    // Initial-store select entries become writes. Entries over derived
    // (post-update) stores describe later states and are skipped.
    let mut field_writes = Vec::new();
    let mut slot_writes = Vec::new();
    for sel in &model.selects {
        if sel.store >= n || sel.obj >= n || sel.attr >= n || sel.value >= n {
            continue;
        }
        if !matches!(class_values[sel.store], ClassValue::Store) {
            continue;
        }
        if !matches!(class_values[sel.obj], ClassValue::Object) {
            continue;
        }
        match &class_values[sel.attr] {
            ClassValue::AttrName(name) if scope.attr(name).is_some() => {
                field_writes.push((sel.obj, name.clone(), sel.value));
            }
            ClassValue::Int(i) => {
                slot_writes.push((sel.obj, *i, sel.value));
            }
            _ => {}
        }
    }
    field_writes.sort();
    field_writes.dedup();
    slot_writes.sort();
    slot_writes.dedup();

    let args = params
        .iter()
        .map(|p| {
            model
                .classes
                .iter()
                .position(|c| c.members.iter().any(|m| m.is_var(p)))
        })
        .collect();

    PreStorePlan {
        class_values,
        field_writes,
        slot_writes,
        args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_logic::{Symbol, Term};
    use oolong_prover::{ModelClass, ModelSelect};
    use oolong_syntax::parse_program;

    fn scope() -> Scope {
        Scope::analyze(&parse_program("field f proc p(t) modifies t.f").unwrap()).unwrap()
    }

    fn class(members: Vec<Term>, value: Option<Cst>) -> ModelClass {
        ModelClass {
            repr: members.first().cloned().unwrap_or(Term::var("_")),
            members,
            value,
        }
    }

    #[test]
    fn store_param_and_constant_classes_are_sorted() {
        let model = CandidateModel {
            labels: vec![],
            classes: vec![
                class(vec![Term::var(STORE0), Term::var(STORE)], None),
                class(vec![Term::var("t")], None),
                class(vec![Term::int(3)], Some(Cst::Int(3))),
                class(vec![Term::attr("f")], Some(Cst::Attr(Symbol::intern("f")))),
            ],
            selects: vec![ModelSelect {
                store: 0,
                obj: 1,
                attr: 3,
                value: 2,
            }],
            relations: vec![],
            diseqs: vec![],
        };
        let plan = concretize(&scope(), &model, &["t".into()]);
        assert_eq!(plan.class_values[0], ClassValue::Store);
        assert_eq!(plan.class_values[1], ClassValue::Object);
        assert_eq!(plan.class_values[2], ClassValue::Int(3));
        assert_eq!(plan.class_values[3], ClassValue::AttrName("f".into()));
        assert_eq!(plan.field_writes, vec![(1, "f".into(), 2)]);
        assert_eq!(plan.args, vec![Some(1)]);
    }

    #[test]
    fn missing_param_gets_fresh_object() {
        let model = CandidateModel::default();
        let plan = concretize(&scope(), &model, &["t".into()]);
        assert_eq!(plan.args, vec![None]);
    }
}
