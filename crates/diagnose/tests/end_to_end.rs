//! End-to-end diagnosis: check → refutation → concretize → replay.

use datagroups::{CheckOptions, Checker, ObligationKind, Verdict};
use oolong_diagnose::{diagnose_refutation, Diagnosis};
use oolong_syntax::parse_program;

fn diagnose(src: &str, proc_name: &str) -> Diagnosis {
    let program = parse_program(src).expect("parses");
    let checker = Checker::new(&program, CheckOptions::default()).expect("analyses");
    let (impl_id, _) = checker
        .scope()
        .impls()
        .find(|(_, i)| checker.scope().proc_info(i.proc).name == proc_name)
        .expect("impl exists");
    let vc = checker.vc(impl_id).expect("vc generates");
    let verdict = checker.verdict_for_vc(&vc);
    let Verdict::NotVerified(_, refutation) = &verdict else {
        panic!("expected a refutation, got {}", verdict.label());
    };
    diagnose_refutation(checker.scope(), src, &vc, refutation).expect("diagnosis")
}

#[test]
fn unlicensed_field_write_is_confirmed_at_its_span() {
    let src = "field f proc sneaky(r) impl sneaky(r) { r.f := 3 }";
    let d = diagnose(src, "sneaky");
    assert_eq!(d.kind, ObligationKind::ModifiesViolation);
    assert_eq!(d.snippet, "r.f := 3", "span points at the write: {d:?}");
    assert!(d.confirmed(), "replay should confirm: {:?}", d.replay);
}

#[test]
fn failing_assert_is_confirmed_at_its_span() {
    let src = "proc p(t) impl p(t) { assert false }";
    let d = diagnose(src, "p");
    assert_eq!(d.kind, ObligationKind::Assert);
    assert_eq!(d.snippet, "assert false");
    assert!(d.confirmed(), "replay should confirm: {:?}", d.replay);
}

#[test]
fn second_of_two_writes_is_the_one_blamed() {
    // The first write is licensed; only the second violates.
    let src = "field f field g
               proc p(t) modifies t.f
               impl p(t) { t.f := 1 ; t.g := 2 }";
    let d = diagnose(src, "p");
    assert_eq!(d.kind, ObligationKind::ModifiesViolation);
    assert_eq!(d.snippet, "t.g := 2", "blames the unlicensed write: {d:?}");
    assert!(d.confirmed(), "replay should confirm: {:?}", d.replay);
}

#[test]
fn uncovered_read_is_confirmed_at_the_dereference() {
    // q declares reads t.f but dereferences t.h.
    let src = "field f field h
               proc q(t) reads t.f
               impl q(t) { assert t.h = t.h }";
    let d = diagnose(src, "q");
    assert_eq!(d.kind, ObligationKind::ReadsViolation);
    assert_eq!(d.snippet, "t.h", "span points at the dereference: {d:?}");
    assert!(d.confirmed(), "replay should confirm: {:?}", d.replay);
}

#[test]
fn broken_invariant_is_confirmed_at_the_declaration() {
    let src = "group g field f in g
               invariant this.f = 0
               proc p(t) modifies t.g
               impl p(t) { t.f := 1 }";
    let d = diagnose(src, "p");
    assert_eq!(d.kind, ObligationKind::InvariantPreserved);
    assert_eq!(
        d.snippet, "invariant this.f = 0",
        "span points at the declaration: {d:?}"
    );
    assert!(d.confirmed(), "replay should confirm: {:?}", d.replay);
}

#[test]
fn call_without_license_is_blamed_at_the_call() {
    let src = "field f proc callee(u) modifies u.f
               proc q(t) impl q(t) { callee(t) }";
    let d = diagnose(src, "q");
    assert_eq!(d.kind, ObligationKind::ModifiesViolation);
    assert_eq!(d.snippet, "callee(t)", "blames the call: {d:?}");
    assert!(
        d.clause.contains("callee") && d.clause.contains("u.f"),
        "clause names the uncovered entry: {}",
        d.clause
    );
    assert!(d.confirmed(), "replay should confirm: {:?}", d.replay);
}
