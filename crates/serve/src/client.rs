//! A minimal blocking client for the serve protocol: connect to the
//! socket, write one request line, read one response line.

use oolong_engine::{json, Json};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One client session over the daemon's Unix socket. Requests on a
/// session are answered in order; open several clients for parallelism.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a running server's socket.
    ///
    /// # Errors
    ///
    /// Returns the connect error if no server is listening there.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line and returns the raw response line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection drops before a full
    /// response line arrives.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{}", line.trim_end())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request line and parses the response as JSON.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection loss or an unparsable
    /// response (which would be a server bug).
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        let raw = self.request_raw(line)?;
        json::parse(&raw).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response from server: {e}"),
            )
        })
    }
}

/// Convenience for scripted sessions: whether a parsed response reports
/// success.
pub fn response_ok(response: &Json) -> bool {
    matches!(response.get("ok"), Some(Json::Bool(true)))
}
