//! The resident daemon: accept loop, session threads, worker pool,
//! admission control, and load metrics.
//!
//! ## Threading model
//!
//! One thread accepts connections; each connection gets a session thread
//! that reads request lines and writes response lines in order; a fixed
//! pool of worker threads executes the proving work. Sessions hand each
//! proving request (`check` / `batch` / `explain`) to the pool through a
//! *bounded* queue and block for its response, so concurrency equals the
//! number of live sessions but CPU work is capped by the pool size.
//! `stats` and `shutdown` are answered inline — they must stay responsive
//! precisely when the pool is saturated.
//!
//! ## Admission control
//!
//! The queue bound is the admission limit. When a session cannot enqueue
//! (pool busy, queue full), the request is *not* dropped and does *not*
//! wait: the session runs it immediately under the server's **degraded
//! budget** (default [`Budget::tiny`]). A starved budget turns hard
//! obligations into fast `unknown` verdicts that carry the usual
//! divergence attribution, so overload degrades per-request answer
//! quality instead of collapsing into an unbounded queue — the same
//! bounded-effort philosophy the paper applies to diverging proofs (§5).
//! Degraded responses are marked `"degraded":true`.
//!
//! ## Shared cache
//!
//! All requests share one [`TieredStore`] opened at bind time: a bounded
//! in-memory LRU tier in front of the persistent on-disk tier. Engines
//! are built per request (each request may override its prover budget)
//! against the same store handle, so a warm obligation is served from
//! memory no matter which session, budget, or engine asks.

use crate::protocol::{
    check_result_json, error_response, explain_result_json, ok_response, parse_request, Command,
    Request, UnitRef,
};
use datagroups::CheckOptions;
use oolong_engine::{
    BatchReport, BatchUnit, ContextPool, Engine, EngineOptions, EventLogWriter, Json, TieredStore,
    VerdictStore, DEFAULT_CONTEXT_CAPACITY, DEFAULT_MEMORY_CAPACITY,
};
use oolong_prover::Budget;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Path of the Unix socket to listen on. A stale socket file is
    /// replaced.
    pub socket: PathBuf,
    /// Directory of the persistent verdict tier; `None` serves from
    /// memory only.
    pub cache_dir: Option<PathBuf>,
    /// Entry bound of the in-memory LRU tier.
    pub mem_capacity: usize,
    /// Worker threads executing proving requests; `0` means one per
    /// available core.
    pub workers: usize,
    /// Admission-queue bound: proving requests beyond this many waiting
    /// are run degraded instead of queued.
    pub queue: usize,
    /// Default checking options; requests may override budget dimensions
    /// and toggles per request.
    pub check: CheckOptions,
    /// The budget applied to requests admitted past a full queue.
    pub degraded_budget: Budget,
    /// Stream every engine event of every request to this JSONL file,
    /// flushed per line so aborted requests stay observable.
    pub events: Option<PathBuf>,
    /// Log one JSON object per request to stderr instead of a human
    /// line.
    pub json_log: bool,
    /// Suppress per-request logging entirely (tests, benches).
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from("oolong.sock"),
            cache_dir: None,
            mem_capacity: DEFAULT_MEMORY_CAPACITY,
            workers: 0,
            queue: 64,
            check: CheckOptions::default(),
            degraded_budget: Budget::tiny(),
            events: None,
            json_log: false,
            quiet: false,
        }
    }
}

/// Monotonic counters and latency samples behind the `stats` request.
#[derive(Debug, Default)]
struct Metrics {
    received: AtomicU64,
    answered: AtomicU64,
    errors: AtomicU64,
    degraded: AtomicU64,
    by_cmd: [AtomicU64; 6],
    queue_depth: AtomicUsize,
    queue_peak: AtomicUsize,
    cache_hits: AtomicU64,
    prover_calls: AtomicU64,
    obligations: AtomicU64,
    latencies: Mutex<Vec<f64>>,
}

const CMD_NAMES: [&str; 6] = ["check", "batch", "explain", "infer", "stats", "shutdown"];

fn cmd_index(name: &str) -> usize {
    CMD_NAMES.iter().position(|&c| c == name).unwrap_or(0)
}

/// Nearest-rank percentile over an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// State shared by every server thread.
struct Shared {
    options: ServeOptions,
    store: Arc<TieredStore>,
    /// Warm scope contexts, shared across requests: the first obligation
    /// of a scope saturates its background, later requests reuse it.
    contexts: Arc<ContextPool>,
    metrics: Metrics,
    stop: AtomicBool,
    started: Instant,
    events: Option<Mutex<EventLogWriter>>,
}

impl Shared {
    fn log(&self, cmd: &str, id: Option<i64>, millis: f64, degraded: bool, report: &str) {
        if self.options.quiet {
            return;
        }
        if self.options.json_log {
            let mut members = vec![
                ("at".to_string(), Json::Str("request".to_string())),
                ("cmd".to_string(), Json::Str(cmd.to_string())),
            ];
            if let Some(id) = id {
                members.push(("id".to_string(), Json::Int(id)));
            }
            members.push(("millis".to_string(), Json::Float(millis)));
            members.push(("degraded".to_string(), Json::Bool(degraded)));
            members.push(("report".to_string(), Json::Str(report.to_string())));
            eprintln!("{}", Json::Object(members).render());
        } else {
            let id = id.map(|i| format!(" id={i}")).unwrap_or_default();
            let flag = if degraded { " [degraded]" } else { "" };
            eprintln!("serve: {cmd}{id} {millis:.1}ms{flag} {report}");
        }
    }

    /// Resolves a unit reference into a batch unit, reading corpus
    /// programs and server-side files for named references.
    fn resolve(&self, unit: &UnitRef) -> Result<BatchUnit, String> {
        match unit {
            UnitRef::Inline { name, source } => Ok(BatchUnit {
                name: name.clone(),
                source: source.clone(),
            }),
            UnitRef::Named(spec) => {
                let source = if let Some(name) = spec.strip_prefix("corpus:") {
                    oolong_corpus::by_name(name)
                        .map(|p| p.source.to_string())
                        .ok_or_else(|| format!("no corpus program named `{name}`"))?
                } else {
                    std::fs::read_to_string(spec)
                        .map_err(|e| format!("cannot read `{spec}`: {e}"))?
                };
                Ok(BatchUnit {
                    name: spec.clone(),
                    source,
                })
            }
        }
    }

    /// An engine over the shared store and warm contexts, with the
    /// request's effective options.
    fn engine_for(&self, check: CheckOptions, diagnose: bool) -> Engine {
        Engine::with_store_and_contexts(
            EngineOptions {
                check,
                // Sessions are the unit of parallelism; one request keeps
                // to one core so the pool bound means what it says.
                workers: 1,
                cache_dir: None,
                diagnose,
            },
            self.store.clone() as Arc<dyn VerdictStore>,
            self.contexts.clone(),
        )
    }

    /// Runs one proving request to a finished [`BatchReport`], absorbing
    /// its events into the server log and its counters into the metrics.
    fn run_engine(&self, units: &[BatchUnit], check: CheckOptions, diagnose: bool) -> BatchReport {
        let engine = self.engine_for(check, diagnose);
        let report = engine.check_batch(units);
        self.metrics
            .cache_hits
            .fetch_add(report.cache_hits as u64, Ordering::Relaxed);
        self.metrics
            .prover_calls
            .fetch_add(report.prover_calls as u64, Ordering::Relaxed);
        self.metrics
            .obligations
            .fetch_add(report.obligations.len() as u64, Ordering::Relaxed);
        if let Some(writer) = &self.events {
            let mut writer = writer.lock().expect("event writer lock poisoned");
            // Durability over availability: each line is flushed, and a
            // full disk degrades logging, never request service.
            let _ = writer.write_all(&report.events);
        }
        report
    }

    /// Executes one proving command and renders its response line.
    fn serve_proving(&self, request: &Request, degraded: bool) -> String {
        let start = Instant::now();
        let base = if degraded {
            CheckOptions {
                budget: self.options.degraded_budget.clone(),
                ..self.options.check.clone()
            }
        } else {
            self.options.check.clone()
        };
        let rendered = match &request.command {
            Command::Check { unit, options } => {
                let resolved = match self.resolve(unit) {
                    Ok(u) => u,
                    Err(e) => return self.error(request.id, &e),
                };
                let report = self.run_engine(
                    std::slice::from_ref(&resolved),
                    options.apply(&base),
                    options.explain,
                );
                if let Some(error) = report.unit_errors.first() {
                    return self.error(request.id, &error.message);
                }
                ok_response(
                    request.id,
                    "check",
                    degraded,
                    start.elapsed().as_secs_f64() * 1_000.0,
                    check_result_json(&report),
                    Some(&report.events),
                )
            }
            Command::Batch { units, options } => {
                let resolved: Result<Vec<_>, _> = units.iter().map(|u| self.resolve(u)).collect();
                let resolved = match resolved {
                    Ok(units) => units,
                    Err(e) => return self.error(request.id, &e),
                };
                let report = self.run_engine(&resolved, options.apply(&base), options.explain);
                ok_response(
                    request.id,
                    "batch",
                    degraded,
                    start.elapsed().as_secs_f64() * 1_000.0,
                    report.to_json(),
                    Some(&report.events),
                )
            }
            Command::Explain {
                unit,
                proc,
                options,
            } => {
                let resolved = match self.resolve(unit) {
                    Ok(u) => u,
                    Err(e) => return self.error(request.id, &e),
                };
                let report =
                    self.run_engine(std::slice::from_ref(&resolved), options.apply(&base), true);
                if let Some(error) = report.unit_errors.first() {
                    return self.error(request.id, &error.message);
                }
                let filter = proc.as_deref();
                if !report
                    .obligations
                    .iter()
                    .any(|o| filter.is_none_or(|f| o.proc_name == f))
                {
                    return self.error(
                        request.id,
                        &match filter {
                            Some(f) => format!("no implementation of `{f}` in `{}`", unit.name()),
                            None => format!("no implementations in `{}`", unit.name()),
                        },
                    );
                }
                ok_response(
                    request.id,
                    "explain",
                    degraded,
                    start.elapsed().as_secs_f64() * 1_000.0,
                    explain_result_json(unit.name(), &report, filter),
                    Some(&report.events),
                )
            }
            Command::Infer {
                unit,
                proc,
                max_rounds,
                options,
            } => {
                // Named references accept the inference schemes
                // (`stripped:NAME`, `unannotated:SEED`) on top of the
                // usual corpus/file resolution.
                let resolved = match unit {
                    UnitRef::Named(spec) => match oolong_infer::resolve_spec(spec) {
                        Some(Ok(u)) => u,
                        Some(Err(e)) => return self.error(request.id, &e),
                        None => match self.resolve(unit) {
                            Ok(u) => oolong_infer::InferUnit {
                                name: u.name,
                                source: u.source,
                                truth: None,
                            },
                            Err(e) => return self.error(request.id, &e),
                        },
                    },
                    UnitRef::Inline { name, source } => oolong_infer::InferUnit {
                        name: name.clone(),
                        source: source.clone(),
                        truth: None,
                    },
                };
                let mut opts = oolong_infer::InferOptions {
                    check: options.apply(&base),
                    proc: proc.clone(),
                    ..Default::default()
                };
                if let Some(n) = max_rounds {
                    opts.max_rounds = *n;
                }
                let engine = self.engine_for(opts.check.clone(), false);
                let outcome =
                    match oolong_infer::infer(&engine, &resolved.name, &resolved.source, &opts) {
                        Ok(o) => o,
                        Err(e) => return self.error(request.id, &e),
                    };
                let accuracy = match &resolved.truth {
                    Some(truth) => match oolong_infer::accuracy(&outcome, truth) {
                        Ok(a) => Some(a),
                        Err(e) => return self.error(request.id, &e),
                    },
                    None => None,
                };
                ok_response(
                    request.id,
                    "infer",
                    degraded,
                    start.elapsed().as_secs_f64() * 1_000.0,
                    oolong_infer::infer_json(&outcome, accuracy.as_ref(), false),
                    None,
                )
            }
            Command::Stats | Command::Shutdown => {
                unreachable!("control commands are served inline")
            }
        };
        let millis = start.elapsed().as_secs_f64() * 1_000.0;
        self.metrics
            .latencies
            .lock()
            .expect("latency lock poisoned")
            .push(millis);
        if degraded {
            self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.answered.fetch_add(1, Ordering::Relaxed);
        self.log(request.command.name(), request.id, millis, degraded, "ok");
        rendered
    }

    fn error(&self, id: Option<i64>, message: &str) -> String {
        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        self.log("error", id, 0.0, false, message);
        error_response(id, message)
    }

    /// The `stats` response: load metrics of the running server.
    fn stats_json(&self) -> Json {
        let m = &self.metrics;
        let latencies = {
            let mut samples = m.latencies.lock().expect("latency lock poisoned").clone();
            samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            samples
        };
        let store = self.store.metrics();
        Json::Object(vec![
            (
                "uptime_millis".to_string(),
                Json::Float(self.started.elapsed().as_secs_f64() * 1_000.0),
            ),
            (
                "requests".to_string(),
                Json::Object(vec![
                    (
                        "received".to_string(),
                        Json::Int(m.received.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "answered".to_string(),
                        Json::Int(m.answered.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "errors".to_string(),
                        Json::Int(m.errors.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "degraded".to_string(),
                        Json::Int(m.degraded.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "by_cmd".to_string(),
                        Json::Object(
                            CMD_NAMES
                                .iter()
                                .zip(&m.by_cmd)
                                .map(|(name, n)| {
                                    (
                                        name.to_string(),
                                        Json::Int(n.load(Ordering::Relaxed) as i64),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "queue".to_string(),
                Json::Object(vec![
                    ("capacity".to_string(), Json::Int(self.options.queue as i64)),
                    (
                        "depth".to_string(),
                        Json::Int(m.queue_depth.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "peak".to_string(),
                        Json::Int(m.queue_peak.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "store".to_string(),
                Json::Object(vec![
                    (
                        "mem_entries".to_string(),
                        Json::Int(store.mem_entries as i64),
                    ),
                    (
                        "mem_capacity".to_string(),
                        Json::Int(store.mem_capacity as i64),
                    ),
                    ("mem_hits".to_string(), Json::Int(store.mem_hits as i64)),
                    ("mem_misses".to_string(), Json::Int(store.mem_misses as i64)),
                    ("evictions".to_string(), Json::Int(store.evictions as i64)),
                    ("disk_hits".to_string(), Json::Int(store.disk_hits as i64)),
                    (
                        "disk_misses".to_string(),
                        Json::Int(store.disk_misses as i64),
                    ),
                    ("inserts".to_string(), Json::Int(store.inserts as i64)),
                    (
                        "disk_entries".to_string(),
                        Json::Int(self.store.disk_len() as i64),
                    ),
                ]),
            ),
            (
                "engine".to_string(),
                Json::Object(vec![
                    (
                        "obligations".to_string(),
                        Json::Int(m.obligations.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "cache_hits".to_string(),
                        Json::Int(m.cache_hits.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "prover_calls".to_string(),
                        Json::Int(m.prover_calls.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            ("contexts".to_string(), {
                let c = self.contexts.metrics();
                Json::Object(vec![
                    ("warm".to_string(), Json::Int(c.size as i64)),
                    ("hits".to_string(), Json::Int(c.hits as i64)),
                    ("misses".to_string(), Json::Int(c.misses as i64)),
                    ("evictions".to_string(), Json::Int(c.evictions as i64)),
                ])
            }),
            (
                "latency_millis".to_string(),
                Json::Object(vec![
                    ("count".to_string(), Json::Int(latencies.len() as i64)),
                    ("p50".to_string(), Json::Float(percentile(&latencies, 0.50))),
                    ("p95".to_string(), Json::Float(percentile(&latencies, 0.95))),
                    ("p99".to_string(), Json::Float(percentile(&latencies, 0.99))),
                    (
                        "max".to_string(),
                        Json::Float(latencies.last().copied().unwrap_or(0.0)),
                    ),
                ]),
            ),
        ])
    }
}

/// One queued proving request: the parsed request plus the channel its
/// session blocks on for the rendered response.
struct Job {
    request: Request,
    reply: SyncSender<String>,
}

/// The resident verification service. See the [module docs](self) for
/// the threading and admission model.
pub struct Server {
    listener: UnixListener,
    shared: Arc<Shared>,
}

/// A server running on a background thread (tests, benches, and the
/// CLI's foreground wrapper).
pub struct ServerHandle {
    thread: std::thread::JoinHandle<std::io::Result<()>>,
    socket: PathBuf,
}

impl ServerHandle {
    /// The socket path the server listens on.
    pub fn socket(&self) -> &std::path::Path {
        &self.socket
    }

    /// Waits for the server to stop (after a `shutdown` request).
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O error, if it died on one.
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("server thread panicked")
    }
}

impl Server {
    /// Opens the shared store and binds the socket. A stale socket file
    /// at the path is removed first (Unix sockets do not unlink
    /// themselves).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directory, event log, or
    /// socket cannot be created.
    pub fn bind(options: ServeOptions) -> std::io::Result<Server> {
        let store = Arc::new(match &options.cache_dir {
            Some(dir) => TieredStore::at_dir(dir, options.mem_capacity)?,
            None => TieredStore::in_memory(options.mem_capacity),
        });
        let events = match &options.events {
            Some(path) => Some(Mutex::new(EventLogWriter::create(path)?)),
            None => None,
        };
        let _ = std::fs::remove_file(&options.socket);
        let listener = UnixListener::bind(&options.socket)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                store,
                contexts: Arc::new(ContextPool::with_capacity(DEFAULT_CONTEXT_CAPACITY)),
                metrics: Metrics::default(),
                stop: AtomicBool::new(false),
                started: Instant::now(),
                events,
                options,
            }),
        })
    }

    /// The socket path the server listens on.
    pub fn socket(&self) -> &std::path::Path {
        &self.shared.options.socket
    }

    /// Serves until a `shutdown` request, then drains the queue, joins
    /// the workers, and removes the socket file.
    ///
    /// # Errors
    ///
    /// Returns the accept loop's I/O error, if any.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, shared } = self;
        let workers = match shared.options.workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        let (job_tx, job_rx) = sync_channel::<Job>(shared.options.queue.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = shared.clone();
            let job_rx: Arc<Mutex<Receiver<Job>>> = job_rx.clone();
            pool.push(std::thread::spawn(move || loop {
                let job = job_rx.lock().expect("queue lock poisoned").recv();
                let Ok(job) = job else {
                    break; // every sender dropped: server is done
                };
                shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                let rendered = shared.serve_proving(&job.request, false);
                let _ = job.reply.send(rendered); // session may have gone
            }));
        }

        if !shared.options.quiet {
            eprintln!(
                "serve: listening on {} ({} workers, queue {}, cache {})",
                shared.options.socket.display(),
                workers,
                shared.options.queue,
                shared
                    .options
                    .cache_dir
                    .as_ref()
                    .map(|d| d.display().to_string())
                    .unwrap_or_else(|| "memory".to_string()),
            );
        }

        for stream in listener.incoming() {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = shared.clone();
            let job_tx = job_tx.clone();
            std::thread::spawn(move || session(&shared, stream, &job_tx));
        }
        drop(job_tx);
        for worker in pool {
            let _ = worker.join();
        }
        let _ = std::fs::remove_file(&shared.options.socket);
        if !shared.options.quiet {
            eprintln!(
                "serve: shut down after {} requests",
                shared.metrics.received.load(Ordering::Relaxed)
            );
        }
        Ok(())
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let socket = self.shared.options.socket.clone();
        ServerHandle {
            thread: std::thread::spawn(move || self.run()),
            socket,
        }
    }
}

/// One client session: read request lines, write response lines, in
/// order.
fn session(shared: &Shared, stream: UnixStream, job_tx: &SyncSender<Job>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            break; // client hung up mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.metrics.received.fetch_add(1, Ordering::Relaxed);
        let response = match parse_request(&line) {
            Err(message) => shared.error(None, &message),
            Ok(request) => {
                shared.metrics.by_cmd[cmd_index(request.command.name())]
                    .fetch_add(1, Ordering::Relaxed);
                match &request.command {
                    Command::Stats => {
                        shared.metrics.answered.fetch_add(1, Ordering::Relaxed);
                        ok_response(request.id, "stats", false, 0.0, shared.stats_json(), None)
                    }
                    Command::Shutdown => {
                        shared.metrics.answered.fetch_add(1, Ordering::Relaxed);
                        let response = ok_response(
                            request.id,
                            "shutdown",
                            false,
                            0.0,
                            Json::Object(vec![("shutdown".to_string(), Json::Bool(true))]),
                            None,
                        );
                        let _ = writeln!(writer, "{response}");
                        let _ = writer.flush();
                        shared.stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it observes the flag.
                        let _ = UnixStream::connect(&shared.options.socket);
                        return;
                    }
                    _ if shared.stop.load(Ordering::SeqCst) => {
                        shared.error(request.id, "server is shutting down")
                    }
                    _ => dispatch(shared, job_tx, request),
                }
            }
        };
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break; // client hung up; the event log already has the events
        }
    }
}

/// Admission control: enqueue for the pool, or degrade on a full queue.
fn dispatch(shared: &Shared, job_tx: &SyncSender<Job>, request: Request) -> String {
    let (reply_tx, reply_rx) = sync_channel::<String>(1);
    let depth = shared.metrics.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    shared
        .metrics
        .queue_peak
        .fetch_max(depth, Ordering::Relaxed);
    match job_tx.try_send(Job {
        request,
        reply: reply_tx,
    }) {
        Ok(()) => reply_rx
            .recv()
            .unwrap_or_else(|_| error_response(None, "worker dropped the request")),
        Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
            // Queue full: answer now, degraded, on the session thread.
            shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            shared.serve_proving(&job.request, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
