//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order. The
//! payload schemas deliberately reuse the batch tool's machine formats:
//! a `check` response's `result` member is shaped exactly like `oolong
//! check --json` output (the golden schemas under `tests/golden/` pin
//! it), a `batch` response's `result` like `oolong batch --json`, an
//! `explain` response's like `oolong explain --json`, an `infer`
//! response's like `oolong infer --json`, and the `events` member carries
//! the engine's JSONL event objects verbatim. A client that already
//! parses the CLI's output parses the server's.
//!
//! ## Requests
//!
//! ```json
//! {"id":1,"cmd":"check","unit":"corpus:example1"}
//! {"id":2,"cmd":"check","unit":{"name":"m.oo","source":"group g ..."},
//!  "options":{"max_instances":500,"explain":true}}
//! {"id":3,"cmd":"batch","units":["corpus:example1","corpus:stack_module"]}
//! {"id":4,"cmd":"explain","unit":"corpus:section31_bad_call","proc":"bad_caller"}
//! {"id":5,"cmd":"infer","unit":"stripped:stack_module","max_rounds":4}
//! {"id":6,"cmd":"stats"}
//! {"id":7,"cmd":"shutdown"}
//! ```
//!
//! A unit is either a string (a `corpus:NAME` reference or a server-side
//! file path) or an inline `{"name", "source"}` object. `options` may
//! override the prover budget (`max_instances`, `max_gen`) and toggle
//! `naive` / `null_checks` / `explain` / `no_pattern_policies` per
//! request.
//!
//! ## Responses
//!
//! ```json
//! {"id":1,"ok":true,"cmd":"check","degraded":false,"millis":12.5,
//!  "result":{"impls":[...],"summary":{...}},"events":[...]}
//! {"id":7,"ok":false,"error":"unknown cmd `chekc`"}
//! ```
//!
//! `degraded` marks a request that was admitted past a full queue and
//! therefore ran under the server's degraded prover budget: its hard
//! obligations come back `unknown` with the usual divergence attribution
//! instead of queueing behind everyone else.

use datagroups::CheckOptions;
use oolong_engine::{diagnosis_to_json, label_to_json, stats_to_json, BatchReport, Json};

/// One parsed client request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<i64>,
    /// The operation.
    pub command: Command,
}

/// The operations the service understands.
#[derive(Debug, Clone)]
pub enum Command {
    /// Check one unit; respond in `check --json` shape.
    Check {
        /// The unit to check.
        unit: UnitRef,
        /// Per-request option overrides.
        options: RequestOptions,
    },
    /// Check many units; respond in `batch --json` shape.
    Batch {
        /// The units to check.
        units: Vec<UnitRef>,
        /// Per-request option overrides.
        options: RequestOptions,
    },
    /// Diagnose rejected implementations; respond in `explain --json`
    /// shape.
    Explain {
        /// The unit to diagnose.
        unit: UnitRef,
        /// Restrict to one procedure, when set.
        proc: Option<String>,
        /// Per-request option overrides.
        options: RequestOptions,
    },
    /// Infer missing `modifies` clauses for one unit; respond in
    /// `infer --json` shape.
    Infer {
        /// The unit to infer frames for. Named references additionally
        /// accept the `stripped:NAME` and `unannotated:SEED` schemes.
        unit: UnitRef,
        /// Restrict proposals to one procedure, when set.
        proc: Option<String>,
        /// Override the repair-round bound.
        max_rounds: Option<usize>,
        /// Per-request option overrides.
        options: RequestOptions,
    },
    /// Report server load metrics: request counters, queue state, cache
    /// tier traffic, latency percentiles.
    Stats,
    /// Stop the server after answering.
    Shutdown,
}

impl Command {
    /// The command's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Check { .. } => "check",
            Command::Batch { .. } => "batch",
            Command::Explain { .. } => "explain",
            Command::Infer { .. } => "infer",
            Command::Stats => "stats",
            Command::Shutdown => "shutdown",
        }
    }
}

/// A unit reference: a name the server resolves (corpus reference or
/// file path), or inline source text.
#[derive(Debug, Clone)]
pub enum UnitRef {
    /// `corpus:NAME` or a server-side file path.
    Named(String),
    /// Source shipped in the request.
    Inline {
        /// Display name.
        name: String,
        /// The oolong source text.
        source: String,
    },
}

impl UnitRef {
    /// The unit's display name.
    pub fn name(&self) -> &str {
        match self {
            UnitRef::Named(name) => name,
            UnitRef::Inline { name, .. } => name,
        }
    }
}

/// Per-request checking overrides, layered over the server's defaults.
#[derive(Debug, Clone, Default)]
pub struct RequestOptions {
    /// Override the instantiation budget.
    pub max_instances: Option<usize>,
    /// Override the matching-generation budget.
    pub max_term_gen: Option<u32>,
    /// Run the naive (restriction-free) baseline.
    pub naive: bool,
    /// Emit `≠ null` definedness conditions.
    pub null_checks: bool,
    /// Compute full source-level diagnoses for rejections.
    pub explain: bool,
    /// Schedule every background axiom eagerly, ignoring the declared
    /// activation phases (the PR-7 goalless-saturation schedule). Off by
    /// default; the engine keys contexts and fingerprints on the phase
    /// mask, so flipping this re-proves instead of serving stale entries.
    pub no_pattern_policies: bool,
}

impl RequestOptions {
    /// The request's effective [`CheckOptions`]: the server defaults with
    /// this request's overrides applied.
    pub fn apply(&self, base: &CheckOptions) -> CheckOptions {
        let mut options = base.clone();
        if let Some(n) = self.max_instances {
            options.budget.max_instances = n;
        }
        if let Some(n) = self.max_term_gen {
            options.budget.max_term_gen = n;
        }
        options.naive |= self.naive;
        options.null_checks |= self.null_checks;
        options.pattern_policies &= !self.no_pattern_policies;
        options
    }
}

fn as_bool(value: Option<&Json>) -> bool {
    matches!(value, Some(Json::Bool(true)))
}

fn parse_unit(value: &Json) -> Result<UnitRef, String> {
    match value {
        Json::Str(name) => Ok(UnitRef::Named(name.clone())),
        Json::Object(_) => {
            let name = value
                .get("name")
                .and_then(Json::as_str)
                .ok_or("unit object needs a string `name`")?;
            let source = value
                .get("source")
                .and_then(Json::as_str)
                .ok_or("unit object needs a string `source`")?;
            Ok(UnitRef::Inline {
                name: name.to_string(),
                source: source.to_string(),
            })
        }
        _ => Err("a unit is a string or a {name, source} object".to_string()),
    }
}

fn parse_options(value: Option<&Json>) -> Result<RequestOptions, String> {
    let Some(value) = value else {
        return Ok(RequestOptions::default());
    };
    if !matches!(value, Json::Object(_)) {
        return Err("`options` must be an object".to_string());
    }
    Ok(RequestOptions {
        max_instances: value
            .get("max_instances")
            .map(|v| v.as_u64().ok_or("bad `max_instances`"))
            .transpose()?
            .map(|n| n as usize),
        max_term_gen: value
            .get("max_gen")
            .map(|v| v.as_u64().ok_or("bad `max_gen`"))
            .transpose()?
            .map(|n| n as u32),
        naive: as_bool(value.get("naive")),
        null_checks: as_bool(value.get("null_checks")),
        explain: as_bool(value.get("explain")),
        no_pattern_policies: as_bool(value.get("no_pattern_policies")),
    })
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message suitable for an error response when
/// the line is not valid JSON or not a well-formed request.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = oolong_engine::json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let id = match value.get("id") {
        Some(Json::Int(id)) => Some(*id),
        Some(_) => return Err("`id` must be an integer".to_string()),
        None => None,
    };
    let cmd = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing string `cmd`")?;
    let options = parse_options(value.get("options"))?;
    let command = match cmd {
        "check" => Command::Check {
            unit: parse_unit(value.get("unit").ok_or("`check` needs a `unit`")?)?,
            options,
        },
        "batch" => {
            let units = value
                .get("units")
                .and_then(Json::as_array)
                .ok_or("`batch` needs a `units` array")?;
            if units.is_empty() {
                return Err("`batch` needs at least one unit".to_string());
            }
            Command::Batch {
                units: units.iter().map(parse_unit).collect::<Result<_, _>>()?,
                options,
            }
        }
        "explain" => Command::Explain {
            unit: parse_unit(value.get("unit").ok_or("`explain` needs a `unit`")?)?,
            proc: value.get("proc").and_then(Json::as_str).map(str::to_string),
            options: RequestOptions {
                explain: true,
                ..options
            },
        },
        "infer" => Command::Infer {
            unit: parse_unit(value.get("unit").ok_or("`infer` needs a `unit`")?)?,
            proc: value.get("proc").and_then(Json::as_str).map(str::to_string),
            max_rounds: value
                .get("max_rounds")
                .map(|v| v.as_u64().ok_or("bad `max_rounds`"))
                .transpose()?
                .map(|n| n as usize),
            options,
        },
        "stats" => Command::Stats,
        "shutdown" => Command::Shutdown,
        other => return Err(format!("unknown cmd `{other}`")),
    };
    Ok(Request { id, command })
}

/// One implementation's members in `check --json` shape — the exact
/// member set and order the CLI emits, so the golden schemas pin both
/// surfaces at once.
fn impl_json(o: &oolong_engine::ObligationReport) -> Json {
    let mut members = vec![
        ("proc".to_string(), Json::Str(o.proc_name.clone())),
        (
            "verdict".to_string(),
            Json::Str(o.verdict.label().to_string()),
        ),
    ];
    if let Some(stats) = o.verdict.stats() {
        members.push(("stats".to_string(), stats_to_json(stats)));
    }
    if let Some(divergence) = o.verdict.divergence() {
        members.push((
            "divergence".to_string(),
            Json::Object(vec![
                (
                    "reason".to_string(),
                    Json::Str(divergence.reason.as_str().to_string()),
                ),
                (
                    "culprits".to_string(),
                    Json::Array(
                        divergence
                            .culprits
                            .iter()
                            .map(|c| Json::Str(c.to_string()))
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if let Some(branch) = o.verdict.open_branch() {
        members.push((
            "open_branch".to_string(),
            Json::Array(branch.iter().map(|l| Json::Str(l.clone())).collect()),
        ));
    }
    if let Some(refutation) = o.verdict.refutation() {
        if let Some(primary) = &refutation.primary {
            members.push((
                "obligation_kind".to_string(),
                Json::Str(primary.kind.as_str().to_string()),
            ));
            members.push(("label_id".to_string(), Json::Int(primary.id as i64)));
            members.push(("label".to_string(), label_to_json(primary)));
        }
    }
    if let Some(diagnosis) = &o.diagnosis {
        members.push(("diagnosis".to_string(), diagnosis_to_json(diagnosis)));
    }
    Json::Object(members)
}

/// The `result` of a `check` response: `check --json` shape (`impls` +
/// `summary`) built from the engine report of a single-unit batch.
pub fn check_result_json(report: &BatchReport) -> Json {
    let impls = report.obligations.iter().map(impl_json).collect();
    let (v, r, u) = report.tally();
    Json::Object(vec![
        ("impls".to_string(), Json::Array(impls)),
        (
            "summary".to_string(),
            Json::Object(vec![
                ("verified".to_string(), Json::Int(v as i64)),
                ("rejected".to_string(), Json::Int(r as i64)),
                ("unknown".to_string(), Json::Int(u as i64)),
            ]),
        ),
    ])
}

/// The `result` of an `explain` response: `explain --json` shape.
pub fn explain_result_json(unit: &str, report: &BatchReport, proc: Option<&str>) -> Json {
    let impls = report
        .obligations
        .iter()
        .filter(|o| proc.is_none_or(|f| o.proc_name == f))
        .map(|o| {
            let mut members = vec![
                ("proc".to_string(), Json::Str(o.proc_name.clone())),
                (
                    "verdict".to_string(),
                    Json::Str(o.verdict.label().to_string()),
                ),
                ("cache_hit".to_string(), Json::Bool(o.cache_hit)),
            ];
            if let Some(refutation) = o.verdict.refutation() {
                if let Some(primary) = &refutation.primary {
                    members.push((
                        "obligation_kind".to_string(),
                        Json::Str(primary.kind.as_str().to_string()),
                    ));
                    members.push(("label_id".to_string(), Json::Int(primary.id as i64)));
                    members.push(("label".to_string(), label_to_json(primary)));
                }
            }
            members.push((
                "diagnosis".to_string(),
                match &o.diagnosis {
                    Some(d) => diagnosis_to_json(d),
                    None => Json::Null,
                },
            ));
            Json::Object(members)
        })
        .collect();
    Json::Object(vec![
        ("unit".to_string(), Json::Str(unit.to_string())),
        ("impls".to_string(), Json::Array(impls)),
    ])
}

/// A successful response line (without trailing newline).
pub fn ok_response(
    id: Option<i64>,
    cmd: &str,
    degraded: bool,
    millis: f64,
    result: Json,
    events: Option<&[oolong_engine::Event]>,
) -> String {
    let mut members = Vec::new();
    if let Some(id) = id {
        members.push(("id".to_string(), Json::Int(id)));
    }
    members.push(("ok".to_string(), Json::Bool(true)));
    members.push(("cmd".to_string(), Json::Str(cmd.to_string())));
    members.push(("degraded".to_string(), Json::Bool(degraded)));
    members.push(("millis".to_string(), Json::Float(millis)));
    members.push(("result".to_string(), result));
    if let Some(events) = events {
        members.push((
            "events".to_string(),
            Json::Array(events.iter().map(|e| e.to_json()).collect()),
        ));
    }
    Json::Object(members).render()
}

/// An error response line (without trailing newline).
pub fn error_response(id: Option<i64>, message: &str) -> String {
    let mut members = Vec::new();
    if let Some(id) = id {
        members.push(("id".to_string(), Json::Int(id)));
    }
    members.push(("ok".to_string(), Json::Bool(false)));
    members.push(("error".to_string(), Json::Str(message.to_string())));
    Json::Object(members).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_requests() {
        let r = parse_request(r#"{"id":1,"cmd":"check","unit":"corpus:example1"}"#).expect("ok");
        assert_eq!(r.id, Some(1));
        assert!(matches!(
            r.command,
            Command::Check {
                unit: UnitRef::Named(_),
                ..
            }
        ));

        let r = parse_request(
            r#"{"cmd":"check","unit":{"name":"m.oo","source":"group g"},"options":{"max_instances":5,"explain":true}}"#,
        )
        .expect("ok");
        let Command::Check { unit, options } = r.command else {
            panic!("check");
        };
        assert_eq!(unit.name(), "m.oo");
        assert_eq!(options.max_instances, Some(5));
        assert!(options.explain);
        assert!(!options.no_pattern_policies);

        let r = parse_request(
            r#"{"cmd":"check","unit":"corpus:example1","options":{"no_pattern_policies":true}}"#,
        )
        .expect("ok");
        let Command::Check { options, .. } = r.command else {
            panic!("check");
        };
        assert!(options.no_pattern_policies);
        assert!(!options.apply(&CheckOptions::default()).pattern_policies);

        let r = parse_request(
            r#"{"id":3,"cmd":"batch","units":["corpus:example1","corpus:example2"]}"#,
        )
        .expect("ok");
        assert!(matches!(r.command, Command::Batch { ref units, .. } if units.len() == 2));

        let r = parse_request(
            r#"{"id":4,"cmd":"explain","unit":"corpus:section31_bad_call","proc":"bad_caller"}"#,
        )
        .expect("ok");
        let Command::Explain { proc, options, .. } = r.command else {
            panic!("explain");
        };
        assert_eq!(proc.as_deref(), Some("bad_caller"));
        assert!(options.explain, "explain requests always diagnose");

        let r = parse_request(
            r#"{"id":5,"cmd":"infer","unit":"stripped:stack_module","proc":"push","max_rounds":4}"#,
        )
        .expect("ok");
        let Command::Infer {
            unit,
            proc,
            max_rounds,
            ..
        } = r.command
        else {
            panic!("infer");
        };
        assert_eq!(unit.name(), "stripped:stack_module");
        assert_eq!(proc.as_deref(), Some("push"));
        assert_eq!(max_rounds, Some(4));

        assert!(matches!(
            parse_request(r#"{"cmd":"stats"}"#).expect("ok").command,
            Command::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#).expect("ok").command,
            Command::Shutdown
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("nonsense").is_err());
        assert!(parse_request(r#"{"cmd":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"check"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"batch","units":[]}"#).is_err());
        assert!(parse_request(r#"{"id":"one","cmd":"stats"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"check","unit":7}"#).is_err());
        assert!(parse_request(r#"{"cmd":"infer"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"infer","unit":"x","max_rounds":"lots"}"#).is_err());
    }

    #[test]
    fn responses_parse_back() {
        let line = ok_response(Some(9), "stats", false, 0.5, Json::Object(vec![]), None);
        let value = oolong_engine::json::parse(&line).expect("parses");
        assert_eq!(value.get("id").and_then(Json::as_u64), Some(9));
        assert!(matches!(value.get("ok"), Some(Json::Bool(true))));

        let line = error_response(None, "nope");
        let value = oolong_engine::json::parse(&line).expect("parses");
        assert!(matches!(value.get("ok"), Some(Json::Bool(false))));
        assert_eq!(value.get("error").and_then(Json::as_str), Some("nope"));
    }
}
