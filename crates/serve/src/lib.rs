//! **The resident verification service** for oolong.
//!
//! Everything below the engine is already incremental: verdicts are
//! content-addressed by VC fingerprint ([`oolong_engine::fingerprint`])
//! and cached across runs. What a batch CLI cannot amortize is *process
//! residency* — every invocation re-opens the cache, re-warms nothing,
//! and answers exactly one request. This crate keeps one warm process
//! serving many: a daemon on a Unix socket speaking newline-delimited
//! JSON, a worker pool in front of a shared two-tier verdict store
//! (bounded in-memory LRU over the persistent on-disk cache), and
//! admission control that degrades overloaded requests to cheap
//! `unknown(budget)` answers — with the usual divergence attribution —
//! instead of queueing without bound.
//!
//! * [`protocol`] — the wire format: requests (`check`, `batch`,
//!   `explain`, `stats`, `shutdown`) and responses whose `result`
//!   members reuse the CLI's `--json` shapes byte for byte;
//! * [`server`] — the daemon: accept loop, session threads, bounded
//!   worker queue, degraded-mode fallback, and load metrics
//!   (throughput, queue depth, latency percentiles);
//! * [`client`] — a minimal blocking client for scripted sessions,
//!   tests, and the stress bench.
//!
//! # Example
//!
//! ```
//! use oolong_serve::{Client, ServeOptions, Server};
//!
//! let dir = std::env::temp_dir().join(format!("serve-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let server = Server::bind(ServeOptions {
//!     socket: dir.join("oolong.sock"),
//!     quiet: true,
//!     ..ServeOptions::default()
//! })?;
//! let handle = server.spawn();
//!
//! let mut client = Client::connect(handle.socket())?;
//! let cold = client.request(r#"{"id":1,"cmd":"check","unit":"corpus:example1"}"#)?;
//! assert!(oolong_serve::response_ok(&cold));
//!
//! client.request(r#"{"id":2,"cmd":"shutdown"}"#)?;
//! handle.join()?;
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{response_ok, Client};
pub use protocol::{
    check_result_json, error_response, explain_result_json, ok_response, parse_request, Command,
    Request, RequestOptions, UnitRef,
};
pub use server::{ServeOptions, Server, ServerHandle};
