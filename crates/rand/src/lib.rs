//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace: `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen`, `gen_bool`, and `gen_range` over integer ranges.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` cannot be fetched; every consumer only needs a seeded,
//! deterministic stream, which a SplitMix64 generator provides. The stream
//! differs from the real `StdRng` (ChaCha12), which is fine: all users
//! derive *properties* from the stream (well-formed generated programs,
//! seeded interpreter oracles), never golden values.

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a `u64` (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a generator can produce uniformly (subset of rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges that can be sampled from uniformly (subset of rand's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range. Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic for a
    /// given seed, with full 64-bit state and output.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-2i64..5);
            assert!((-2..5).contains(&v));
            let w = rng.gen_range(1usize..=2);
            assert!((1..=2).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
