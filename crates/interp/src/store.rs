//! Runtime values and the object store (the operational counterpart of the
//! semantic model in Section 4.0).

use oolong_sema::AttrId;
use std::collections::HashMap;
use std::fmt;

/// A runtime object identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A runtime value of the untyped language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// The null reference.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An object reference.
    Obj(ObjId),
}

impl Value {
    /// The object id, if this is an object reference.
    pub fn as_obj(&self) -> Option<ObjId> {
        match self {
            Value::Obj(o) => Some(*o),
            _ => None,
        }
    }

    /// Whether the value is `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Obj(o) => write!(f, "{o}"),
        }
    }
}

/// A location `X·A`: attribute `A` of object `X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc {
    /// The object.
    pub obj: ObjId,
    /// The attribute.
    pub attr: AttrId,
}

/// The object store: a map from locations to values plus the allocation
/// frontier. Every object nominally possesses every attribute; attributes
/// never written read as [`Value::Null`].
#[derive(Debug, Clone, Default)]
pub struct Store {
    fields: HashMap<Loc, Value>,
    /// Array slots (the array-dependencies extension): integer-keyed
    /// locations, disjoint from attribute locations.
    slots: HashMap<(ObjId, i64), Value>,
    next: u32,
}

impl Store {
    /// Creates an empty store with no allocated objects.
    pub fn new() -> Store {
        Store::default()
    }

    /// Allocates a fresh object (the operational `new(S)` / `S⁺`).
    pub fn alloc(&mut self) -> ObjId {
        let id = ObjId(self.next);
        self.next += 1;
        id
    }

    /// Whether `obj` has been allocated.
    pub fn is_alive(&self, obj: ObjId) -> bool {
        obj.0 < self.next
    }

    /// The allocation frontier: objects with id below this are alive.
    pub fn frontier(&self) -> u32 {
        self.next
    }

    /// Reads a location (default [`Value::Null`]).
    pub fn read(&self, loc: Loc) -> Value {
        self.fields.get(&loc).copied().unwrap_or(Value::Null)
    }

    /// Writes a location.
    pub fn write(&mut self, loc: Loc, value: Value) {
        self.fields.insert(loc, value);
    }

    /// Iterates over all explicitly written locations and their values.
    pub fn locations(&self) -> impl Iterator<Item = (Loc, Value)> + '_ {
        self.fields.iter().map(|(&l, &v)| (l, v))
    }

    /// All currently allocated objects.
    pub fn objects(&self) -> impl Iterator<Item = ObjId> {
        (0..self.next).map(ObjId)
    }

    /// Number of allocated objects.
    pub fn object_count(&self) -> usize {
        self.next as usize
    }

    /// Reads an array slot (default [`Value::Null`]).
    pub fn read_slot(&self, obj: ObjId, index: i64) -> Value {
        self.slots
            .get(&(obj, index))
            .copied()
            .unwrap_or(Value::Null)
    }

    /// Writes an array slot.
    pub fn write_slot(&mut self, obj: ObjId, index: i64, value: Value) {
        self.slots.insert((obj, index), value);
    }

    /// Iterates over all explicitly written slots and their values.
    pub fn slots(&self) -> impl Iterator<Item = ((ObjId, i64), Value)> + '_ {
        self.slots.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_monotonic() {
        let mut s = Store::new();
        let a = s.alloc();
        let b = s.alloc();
        assert_ne!(a, b);
        assert!(s.is_alive(a));
        assert!(s.is_alive(b));
        assert!(!s.is_alive(ObjId(99)));
        assert_eq!(s.object_count(), 2);
    }

    #[test]
    fn unwritten_locations_read_null() {
        let mut s = Store::new();
        let o = s.alloc();
        let loc = Loc {
            obj: o,
            attr: oolong_sema::AttrId(0),
        };
        assert_eq!(s.read(loc), Value::Null);
        s.write(loc, Value::Int(7));
        assert_eq!(s.read(loc), Value::Int(7));
    }

    #[test]
    fn frontier_snapshots_aliveness() {
        let mut s = Store::new();
        let _a = s.alloc();
        let snapshot = s.frontier();
        let b = s.alloc();
        assert!(b.0 >= snapshot, "objects at or past the snapshot are fresh");
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Obj(ObjId(3)).to_string(), "o3");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
