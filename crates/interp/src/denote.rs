//! The concrete denotation of modifies lists: given a store, which
//! locations does a list license?
//!
//! This is the operational mirror of `mod`/`incl` (Section 4.1). For a
//! concrete store the inclusion relation `≽` is computable as a finite
//! fixpoint over allocated objects and declared attributes:
//!
//! * `X·A ≽ X·B` when `A ⊒ B` (local inclusions);
//! * `Z·H ∈ R` and `H →F K` and `S(Z·F) = Y` (an object) puts `Y·K ∈ R`
//!   (rep inclusions through pivot fields).
//!
//! The runtime effect monitor snapshots this set at every call and checks
//! each field write against it — *as the writes occur*, which the paper's
//! §3.1 footnote points out is necessary for owner exclusion to have the
//! desired effect.

use crate::store::{Loc, ObjId, Store, Value};
use oolong_sema::{AttrId, ModTarget, Scope};
use std::collections::{HashMap, HashSet};

/// The full inclusion closure of a root location: attribute locations plus
/// (for the array-dependencies extension) the arrays whose every slot is
/// included.
#[derive(Debug, Clone, Default)]
pub struct InclusionClosure {
    /// Attribute locations included in the root.
    pub locs: HashSet<Loc>,
    /// Arrays all of whose integer slots are included, with the element
    /// attributes mapped into the root (for closing over stored elements).
    pub elem_arrays: HashMap<ObjId, Vec<AttrId>>,
}

/// All attribute locations included in `root` (i.e. `root ≽ loc`),
/// including `root` itself, computed in the given store.
pub fn included_locations(scope: &Scope, store: &Store, root: Loc) -> HashSet<Loc> {
    inclusion_closure(scope, store, root).locs
}

/// Computes the full [`InclusionClosure`] of `root` in `store`.
pub fn inclusion_closure(scope: &Scope, store: &Store, root: Loc) -> InclusionClosure {
    let mut closure = InclusionClosure::default();
    let mut work = vec![root];
    // Precompute, per attribute, the attributes it locally includes.
    let included_attrs = local_closure(scope);
    let rep = scope.rep_triples();
    let rep_elem = scope.rep_elem_triples();
    while let Some(loc) = work.pop() {
        if !closure.locs.insert(loc) {
            continue;
        }
        for &b in &included_attrs[loc.attr.index()] {
            let next = Loc {
                obj: loc.obj,
                attr: b,
            };
            if !closure.locs.contains(&next) {
                work.push(next);
            }
        }
        for &(g, f, k) in &rep {
            if g == loc.attr {
                if let Value::Obj(y) = store.read(Loc {
                    obj: loc.obj,
                    attr: f,
                }) {
                    let next = Loc { obj: y, attr: k };
                    if !closure.locs.contains(&next) {
                        work.push(next);
                    }
                }
            }
        }
        // Elementwise: the array referenced by pivot f contributes every
        // slot, and attribute k of every element currently stored.
        for &(g, f, k) in &rep_elem {
            if g == loc.attr {
                if let Value::Obj(arr) = store.read(Loc {
                    obj: loc.obj,
                    attr: f,
                }) {
                    let mapped = closure.elem_arrays.entry(arr).or_default();
                    if !mapped.contains(&k) {
                        mapped.push(k);
                        for ((slot_obj, _), value) in store.slots() {
                            if slot_obj == arr {
                                if let Value::Obj(element) = value {
                                    let next = Loc {
                                        obj: element,
                                        attr: k,
                                    };
                                    if !closure.locs.contains(&next) {
                                        work.push(next);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    closure
}

/// For each attribute `a`, the set `{b | a ⊒ b}` (including `a`).
fn local_closure(scope: &Scope) -> Vec<Vec<AttrId>> {
    let n = scope.attr_count();
    let mut included = vec![Vec::new(); n];
    for (b, _) in scope.attrs() {
        included[b.index()].push(b);
        for &a in scope.enclosing_groups(b) {
            included[a.index()].push(b);
        }
    }
    included
}

/// The set of effects a call is licensed to perform: explicit locations
/// plus blanket permission for objects allocated at or past `fresh_from`.
#[derive(Debug, Clone)]
pub struct AllowedEffects {
    /// Locations licensed by the modifies list, closed under inclusion.
    pub locs: HashSet<Loc>,
    /// Arrays all of whose slots are licensed (array dependencies).
    pub elem_arrays: HashSet<ObjId>,
    /// Objects with id `>= fresh_from` were not allocated at call entry
    /// and may be modified freely (`¬alive(S, X)` in `mod`).
    pub fresh_from: u32,
}

impl AllowedEffects {
    /// Whether writing attribute location `loc` is permitted.
    pub fn permits(&self, loc: Loc) -> bool {
        loc.obj.0 >= self.fresh_from || self.locs.contains(&loc)
    }

    /// Whether writing any slot of array `obj` is permitted.
    pub fn permits_slot(&self, obj: ObjId) -> bool {
        obj.0 >= self.fresh_from || self.elem_arrays.contains(&obj)
    }

    /// Unrestricted effects (used for the outermost frame of a run).
    pub fn unrestricted() -> AllowedEffects {
        AllowedEffects {
            locs: HashSet::new(),
            elem_arrays: HashSet::new(),
            fresh_from: 0,
        }
    }
}

/// Computes the allowed effects of a modifies list with the given argument
/// values, evaluated in `store` (the paper's "modifies list evaluated on
/// entry to the method").
///
/// Designator entries whose root or intermediate dereference is not an
/// allocated object contribute nothing (their `tr` denotes no real
/// location).
pub fn allowed_effects(
    scope: &Scope,
    store: &Store,
    targets: &[ModTarget],
    args: &[Value],
) -> AllowedEffects {
    let mut locs = HashSet::new();
    let mut elem_arrays = HashSet::new();
    for target in targets {
        let Some(root) = args.get(target.param) else {
            continue;
        };
        let mut obj = match root.as_obj() {
            Some(o) => o,
            None => continue,
        };
        let mut ok = true;
        for &attr in &target.path[..target.path.len() - 1] {
            match store.read(Loc { obj, attr }).as_obj() {
                Some(next) => obj = next,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let root_loc = Loc {
            obj,
            attr: target.licensed_attr(),
        };
        let closure = inclusion_closure(scope, store, root_loc);
        locs.extend(closure.locs);
        elem_arrays.extend(closure.elem_arrays.into_keys());
    }
    AllowedEffects {
        locs,
        elem_arrays,
        fresh_from: store.frontier(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ObjId;
    use oolong_syntax::parse_program;

    fn scope() -> Scope {
        Scope::analyze(
            &parse_program(
                "group contents
                 group elems
                 field cnt in elems
                 field obj
                 field vec maps elems into contents
                 proc push(st, o) modifies st.contents",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn local_inclusion_closure() {
        let s = scope();
        let mut store = Store::new();
        let v = store.alloc();
        let elems = s.attr("elems").unwrap();
        let cnt = s.attr("cnt").unwrap();
        let set = included_locations(
            &s,
            &store,
            Loc {
                obj: v,
                attr: elems,
            },
        );
        assert!(set.contains(&Loc {
            obj: v,
            attr: elems
        }));
        assert!(set.contains(&Loc { obj: v, attr: cnt }));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn rep_inclusion_follows_pivot_value() {
        let s = scope();
        let mut store = Store::new();
        let st = store.alloc();
        let v = store.alloc();
        let vec = s.attr("vec").unwrap();
        let contents = s.attr("contents").unwrap();
        let cnt = s.attr("cnt").unwrap();
        store.write(Loc { obj: st, attr: vec }, Value::Obj(v));
        let set = included_locations(
            &s,
            &store,
            Loc {
                obj: st,
                attr: contents,
            },
        );
        assert!(
            set.contains(&Loc { obj: v, attr: cnt }),
            "contents reaches the vector's cnt"
        );
        assert!(set.contains(&Loc {
            obj: v,
            attr: s.attr("elems").unwrap()
        }));
        // But not unrelated attributes of st itself.
        assert!(!set.contains(&Loc {
            obj: st,
            attr: s.attr("obj").unwrap()
        }));
    }

    #[test]
    fn rep_inclusion_stops_at_null_pivot() {
        let s = scope();
        let mut store = Store::new();
        let st = store.alloc();
        let contents = s.attr("contents").unwrap();
        let set = included_locations(
            &s,
            &store,
            Loc {
                obj: st,
                attr: contents,
            },
        );
        assert_eq!(set.len(), 1, "null pivot: only the root location");
    }

    #[test]
    fn cyclic_rep_inclusions_terminate() {
        // The paper's linked list: field next maps g into g.
        let s = Scope::analyze(
            &parse_program("group g field value in g field next maps g into g").unwrap(),
        )
        .unwrap();
        let g = s.attr("g").unwrap();
        let next = s.attr("next").unwrap();
        let value = s.attr("value").unwrap();
        let mut store = Store::new();
        let a = store.alloc();
        let b = store.alloc();
        // a.next = b, b.next = a: a cycle in the heap.
        store.write(Loc { obj: a, attr: next }, Value::Obj(b));
        store.write(Loc { obj: b, attr: next }, Value::Obj(a));
        let set = included_locations(&s, &store, Loc { obj: a, attr: g });
        assert!(set.contains(&Loc {
            obj: b,
            attr: value
        }));
        assert!(set.contains(&Loc {
            obj: a,
            attr: value
        }));
        assert_eq!(set.len(), 4, "g and value of both nodes");
    }

    #[test]
    fn allowed_effects_follow_arguments() {
        let s = scope();
        let mut store = Store::new();
        let st = store.alloc();
        let v = store.alloc();
        let vec = s.attr("vec").unwrap();
        let cnt = s.attr("cnt").unwrap();
        store.write(Loc { obj: st, attr: vec }, Value::Obj(v));
        let push = s.proc("push").unwrap();
        let targets = s.proc_info(push).modifies.clone();
        let allowed = allowed_effects(&s, &store, &targets, &[Value::Obj(st), Value::Int(3)]);
        assert!(
            allowed.permits(Loc { obj: v, attr: cnt }),
            "push may write the vector's cnt"
        );
        assert!(!allowed.permits(Loc {
            obj: st,
            attr: s.attr("obj").unwrap()
        }));
        // Fresh objects are freely modifiable.
        let fresh = ObjId(store.frontier());
        assert!(allowed.permits(Loc {
            obj: fresh,
            attr: cnt
        }));
    }

    #[test]
    fn null_argument_contributes_nothing() {
        let s = scope();
        let store = Store::new();
        let push = s.proc("push").unwrap();
        let targets = s.proc_info(push).modifies.clone();
        let allowed = allowed_effects(&s, &store, &targets, &[Value::Null, Value::Null]);
        assert!(allowed.locs.is_empty());
    }
}
