//! The oolong interpreter: bounded-nondeterminism execution with a runtime
//! side-effect monitor.
//!
//! Nondeterminism (choice commands, implementation dispatch, arbitrary
//! initial values of locals) is resolved by an [`Oracle`]; running the same
//! program under many random oracles explores the behaviours the guarded
//! commands denote.
//!
//! Every call pushes a monitor frame recording the callee's licensed
//! effects (the concrete denotation of its modifies list, evaluated at
//! entry). Every field write is checked against **all** active frames, as
//! the writes occur — a violated frame means some active method is
//! exceeding its declared side effects, which is exactly what the static
//! checker is supposed to rule out. This makes the interpreter the ground
//! truth for the soundness experiments.
//!
//! Calls to procedures with no implementation in scope are **havocked**:
//! the interpreter mutates an arbitrary subset of the locations the
//! callee's specification licenses (and may allocate fresh objects). This
//! models "an arbitrary implementation from an arbitrary program
//! extension", which is how the paper's §3 counterexamples manifest at
//! runtime.

use crate::denote::{allowed_effects, AllowedEffects};
use crate::store::{Loc, ObjId, Store, Value};
use oolong_sema::{ImplId, ProcId, Scope};
use oolong_syntax::{BinOp, Cmd, Const, Expr, UnaryOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Resolves the interpreter's nondeterministic choices.
pub trait Oracle {
    /// Picks one of `n` alternatives (`n ≥ 1`).
    fn choose(&mut self, n: usize) -> usize;
    /// Produces an arbitrary value (for `var` initialisation and havoc).
    fn arbitrary(&mut self, store: &Store) -> Value;
}

/// A deterministic oracle: always the first alternative, always `null`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FirstOracle;

impl Oracle for FirstOracle {
    fn choose(&mut self, _n: usize) -> usize {
        0
    }
    fn arbitrary(&mut self, _store: &Store) -> Value {
        Value::Null
    }
}

/// A seeded random oracle.
#[derive(Debug, Clone)]
pub struct RngOracle {
    rng: StdRng,
}

impl RngOracle {
    /// Creates an oracle from a seed.
    pub fn seeded(seed: u64) -> RngOracle {
        RngOracle {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Oracle for RngOracle {
    fn choose(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    fn arbitrary(&mut self, store: &Store) -> Value {
        match self.rng.gen_range(0..5) {
            0 => Value::Null,
            1 => Value::Bool(self.rng.gen()),
            2 => Value::Int(self.rng.gen_range(-2..5)),
            _ => {
                let n = store.object_count();
                if n == 0 {
                    Value::Null
                } else {
                    Value::Obj(ObjId(self.rng.gen_range(0..n as u32)))
                }
            }
        }
    }
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Maximum commands executed before [`RunOutcome::OutOfFuel`].
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Dynamically check owner exclusion at call sites (reports
    /// [`WrongKind::OwnerExclusion`]). Off by default: a violation is a
    /// *specification* discipline breach, interesting to experiments but
    /// not itself a runtime error.
    pub check_owner_exclusion: bool,
    /// Havoc calls to procedures with no implementation in scope (models
    /// arbitrary extensions). When `false` such calls are
    /// [`WrongKind::MissingImpl`].
    pub havoc_unimplemented: bool,
    /// Audit heap *reads* against declared `reads` clauses (reports
    /// [`WrongKind::ReadViolation`]). A frame whose procedure has no
    /// `reads` clause imposes nothing — mirroring the static checker,
    /// where only a declared clause arms the per-dereference obligations.
    /// Off by default: reads clauses are optional and most programs omit
    /// them.
    pub check_reads: bool,
    /// Evaluate declared object invariants dynamically (reports
    /// [`WrongKind::InvariantBroken`]). The static hypothesis assumes
    /// invariants hold of every pre-store object, so (invariant, object)
    /// pairs already broken at run entry are *exempt* — the hypothesis is
    /// vacuous for exactly those. Everything else is checked at call
    /// boundaries and procedure exits, matching the static obligations.
    pub check_invariants: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 100_000,
            max_depth: 200,
            check_owner_exclusion: false,
            havoc_unimplemented: true,
            check_reads: false,
            check_invariants: false,
        }
    }
}

/// Why a run went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WrongKind {
    /// An `assert` evaluated to false.
    AssertFailed,
    /// A dereference of `null`.
    NullDereference,
    /// An operator applied to values of the wrong shape.
    TypeError,
    /// A field write outside some active frame's licensed effects.
    EffectViolation,
    /// A call passed a pivot value to a callee licensed on its owner.
    OwnerExclusion,
    /// A call to a procedure with no implementation (havoc disabled).
    MissingImpl,
    /// A heap read outside some active frame's declared reads clause.
    ReadViolation,
    /// An object invariant evaluated to false at a call boundary or
    /// procedure exit.
    InvariantBroken,
}

impl fmt::Display for WrongKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WrongKind::AssertFailed => "assertion failed",
            WrongKind::NullDereference => "null dereference",
            WrongKind::TypeError => "type error",
            WrongKind::EffectViolation => "side effect outside modifies list",
            WrongKind::OwnerExclusion => "owner exclusion violated at call",
            WrongKind::MissingImpl => "no implementation available",
            WrongKind::ReadViolation => "heap read outside reads clause",
            WrongKind::InvariantBroken => "object invariant broken",
        };
        write!(f, "{s}")
    }
}

/// A wrong outcome with detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wrong {
    /// Classification.
    pub kind: WrongKind,
    /// Human-readable context.
    pub detail: String,
}

impl fmt::Display for Wrong {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// The outcome of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The run terminated normally.
    Completed,
    /// The run went wrong (undesirable).
    Wrong(Wrong),
    /// The run blocked on a false `assume` (never undesirable).
    Blocked,
    /// The step or depth budget ran out.
    OutOfFuel,
}

impl RunOutcome {
    /// Whether the outcome is acceptable for a verified program
    /// (anything except [`RunOutcome::Wrong`]).
    pub fn is_acceptable(&self) -> bool {
        !matches!(self, RunOutcome::Wrong(_))
    }
}

enum Stop {
    Wrong(Wrong),
    Blocked,
    Fuel,
}

fn wrong(kind: WrongKind, detail: impl Into<String>) -> Stop {
    Stop::Wrong(Wrong {
        kind,
        detail: detail.into(),
    })
}

/// The interpreter.
#[derive(Debug)]
pub struct Interp<'s, O> {
    scope: &'s Scope,
    config: ExecConfig,
    oracle: O,
    store: Store,
    frames: Vec<AllowedEffects>,
    /// Declared read frames, parallel to `frames`. `None` = the
    /// procedure has no `reads` clause and its frame licenses all reads.
    read_frames: Vec<Option<AllowedEffects>>,
    /// `(invariant index, object)` pairs already broken at run entry:
    /// the static hypothesis is vacuous for these, so they are never
    /// reported as violations.
    inv_exempt: std::collections::HashSet<(usize, ObjId)>,
    steps: u64,
    /// Owner-exclusion violations observed (recorded even when they are
    /// not configured to be `Wrong`).
    pub owner_exclusion_events: usize,
}

impl<'s, O: Oracle> Interp<'s, O> {
    /// Creates an interpreter with an empty store.
    pub fn new(scope: &'s Scope, config: ExecConfig, oracle: O) -> Self {
        Interp {
            scope,
            config,
            oracle,
            store: Store::new(),
            frames: Vec::new(),
            read_frames: Vec::new(),
            inv_exempt: std::collections::HashSet::new(),
            steps: 0,
            owner_exclusion_events: 0,
        }
    }

    /// The current store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the store (for test setup).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Runs a specific implementation with the given argument values.
    pub fn run_impl(&mut self, impl_id: ImplId, args: &[Value]) -> RunOutcome {
        let info = self.scope.impl_info(impl_id).clone();
        let proc = self.scope.proc_info(info.proc).clone();
        assert_eq!(proc.params.len(), args.len(), "argument count mismatch");
        let allowed = allowed_effects(self.scope, &self.store, &proc.modifies, args);
        self.record_entry_exemptions();
        self.frames.push(allowed);
        self.read_frames.push(self.read_frame(&proc, args));
        let mut env: Vec<(String, Value)> = proc
            .params
            .iter()
            .cloned()
            .zip(args.iter().copied())
            .collect();
        let result = self
            .exec(&info.body, &mut env, 0)
            .and_then(|()| self.check_exit_invariants(&proc.name));
        self.frames.pop();
        self.read_frames.pop();
        match result {
            Ok(()) => RunOutcome::Completed,
            Err(Stop::Wrong(w)) => RunOutcome::Wrong(w),
            Err(Stop::Blocked) => RunOutcome::Blocked,
            Err(Stop::Fuel) => RunOutcome::OutOfFuel,
        }
    }

    /// Runs the named procedure: dispatches to an oracle-chosen
    /// implementation, with fresh objects allocated for each parameter.
    pub fn run_proc_fresh(&mut self, name: &str) -> RunOutcome {
        let Some(pid) = self.scope.proc(name) else {
            return RunOutcome::Wrong(Wrong {
                kind: WrongKind::MissingImpl,
                detail: format!("procedure `{name}` not declared"),
            });
        };
        let n = self.scope.proc_info(pid).params.len();
        let args: Vec<Value> = (0..n).map(|_| Value::Obj(self.store.alloc())).collect();
        match self.dispatch(pid, &args, 0) {
            Ok(()) => RunOutcome::Completed,
            Err(Stop::Wrong(w)) => RunOutcome::Wrong(w),
            Err(Stop::Blocked) => RunOutcome::Blocked,
            Err(Stop::Fuel) => RunOutcome::OutOfFuel,
        }
    }

    fn tick(&mut self) -> Result<(), Stop> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            Err(Stop::Fuel)
        } else {
            Ok(())
        }
    }

    fn exec(
        &mut self,
        cmd: &Cmd,
        env: &mut Vec<(String, Value)>,
        depth: usize,
    ) -> Result<(), Stop> {
        self.tick()?;
        match cmd {
            Cmd::Skip(_) => Ok(()),
            Cmd::Assert(e, _) => {
                if self.eval_bool(e, env)? {
                    Ok(())
                } else {
                    Err(wrong(
                        WrongKind::AssertFailed,
                        format!("assert {}", oolong_syntax::pretty::print_expr(e)),
                    ))
                }
            }
            Cmd::Assume(e, _) => {
                if self.eval_bool(e, env)? {
                    Ok(())
                } else {
                    Err(Stop::Blocked)
                }
            }
            Cmd::Var(x, body, _) => {
                let init = self.oracle.arbitrary(&self.store);
                env.push((x.text.clone(), init));
                let result = self.exec(body, env, depth);
                env.pop();
                result
            }
            Cmd::Seq(a, b) => {
                self.exec(a, env, depth)?;
                self.exec(b, env, depth)
            }
            Cmd::Choice(a, b) => {
                if self.oracle.choose(2) == 0 {
                    self.exec(a, env, depth)
                } else {
                    self.exec(b, env, depth)
                }
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                if self.eval_bool(cond, env)? {
                    self.exec(then_branch, env, depth)
                } else {
                    self.exec(else_branch, env, depth)
                }
            }
            Cmd::Assign { lhs, rhs, .. } => {
                let value = self.eval(rhs, env)?;
                self.assign(lhs, value, env)
            }
            Cmd::AssignNew { lhs, .. } => {
                let fresh = Value::Obj(self.store.alloc());
                self.assign(lhs, fresh, env)
            }
            Cmd::Call { proc, args, .. } => {
                let pid = self
                    .scope
                    .proc(&proc.text)
                    .expect("sema guarantees calls resolve");
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, env)?);
                }
                self.dispatch(pid, &values, depth + 1)
            }
        }
    }

    fn dispatch(&mut self, pid: ProcId, args: &[Value], depth: usize) -> Result<(), Stop> {
        if depth > self.config.max_depth {
            return Err(Stop::Fuel);
        }
        let proc = self.scope.proc_info(pid).clone();
        let allowed = allowed_effects(self.scope, &self.store, &proc.modifies, args);

        // Call-boundary invariant obligation (at depth 0 the "call" is the
        // run's entry, where a broken invariant exempts its object from
        // the hypothesis instead of being an obligation).
        if depth == 0 {
            self.record_entry_exemptions();
        } else if self.config.check_invariants {
            if let Some(detail) = self.broken_invariant() {
                return Err(wrong(
                    WrongKind::InvariantBroken,
                    format!(
                        "call to `{}` observes a broken invariant: {detail}",
                        proc.name
                    ),
                ));
            }
        }

        // Dynamic owner-exclusion observation.
        if self.owner_exclusion_violated(&allowed, args) {
            self.owner_exclusion_events += 1;
            if self.config.check_owner_exclusion {
                return Err(wrong(
                    WrongKind::OwnerExclusion,
                    format!(
                        "call to `{}` passes a pivot value whose owner it may modify",
                        proc.name
                    ),
                ));
            }
        }

        let impls: Vec<ImplId> = self.scope.impls_of(pid).map(|(id, _)| id).collect();
        if impls.is_empty() {
            if !self.config.havoc_unimplemented {
                return Err(wrong(
                    WrongKind::MissingImpl,
                    format!("procedure `{}`", proc.name),
                ));
            }
            self.frames.push(allowed);
            self.read_frames.push(self.read_frame(&proc, args));
            let result = self.havoc();
            self.frames.pop();
            self.read_frames.pop();
            // Havoc models a callee from a *verified* extension, which
            // would be obliged to preserve invariants; a havoc run that
            // breaks one models no verified callee, so discard it.
            if result.is_ok() && self.config.check_invariants && self.broken_invariant().is_some() {
                return Err(Stop::Blocked);
            }
            return result;
        }
        let chosen = impls[self.oracle.choose(impls.len())];
        let body = self.scope.impl_info(chosen).body.clone();
        self.frames.push(allowed);
        self.read_frames.push(self.read_frame(&proc, args));
        let mut env: Vec<(String, Value)> = proc
            .params
            .iter()
            .cloned()
            .zip(args.iter().copied())
            .collect();
        let result = self
            .exec(&body, &mut env, depth)
            .and_then(|()| self.check_exit_invariants(&proc.name));
        self.frames.pop();
        self.read_frames.pop();
        result
    }

    /// The concrete denotation of the procedure's `reads` clause at call
    /// entry, or `None` when no clause is declared (all reads licensed).
    fn read_frame(&self, proc: &oolong_sema::ProcInfo, args: &[Value]) -> Option<AllowedEffects> {
        if !self.config.check_reads {
            return None;
        }
        proc.reads
            .as_ref()
            .map(|targets| allowed_effects(self.scope, &self.store, targets, args))
    }

    /// The exit-obligation mirror of the static `InvariantPreserved` kind:
    /// every invariant must hold of every allocated object when a body
    /// finishes.
    fn check_exit_invariants(&mut self, proc: &str) -> Result<(), Stop> {
        if !self.config.check_invariants {
            return Ok(());
        }
        if let Some(detail) = self.broken_invariant() {
            return Err(wrong(
                WrongKind::InvariantBroken,
                format!("at exit of `{proc}`: {detail}"),
            ));
        }
        Ok(())
    }

    /// Evaluates every declared invariant over every allocated object.
    /// Returns a description of the first violation, or `None` when all
    /// hold. Evaluation errors (e.g. a null dereference inside the
    /// invariant body) count as violations.
    fn broken_invariant(&mut self) -> Option<String> {
        self.broken_pairs().first().map(|&(i, obj)| {
            let expr = &self.scope.invariants()[i].expr;
            format!(
                "invariant `{}` does not hold for {obj}",
                oolong_syntax::pretty::print_expr(expr)
            )
        })
    }

    /// Records every `(invariant, object)` pair broken in the current
    /// (pre-)store as exempt from later checks: the static hypothesis
    /// assumes invariants of pre-store objects, so it is vacuous for
    /// exactly these pairs.
    fn record_entry_exemptions(&mut self) {
        if !self.config.check_invariants {
            return;
        }
        let broken = self.broken_pairs_unfiltered();
        self.inv_exempt.extend(broken);
    }

    /// Non-exempt `(invariant index, object)` pairs broken in the current
    /// store.
    fn broken_pairs(&mut self) -> Vec<(usize, ObjId)> {
        let exempt = std::mem::take(&mut self.inv_exempt);
        let mut broken = self.broken_pairs_unfiltered();
        broken.retain(|pair| !exempt.contains(pair));
        self.inv_exempt = exempt;
        broken
    }

    fn broken_pairs_unfiltered(&mut self) -> Vec<(usize, ObjId)> {
        let scope = self.scope;
        let objects: Vec<ObjId> = self.store.objects().collect();
        // The monitor's own dereferences are not program reads: evaluate
        // with the read frames stashed away.
        let saved = std::mem::take(&mut self.read_frames);
        let mut broken = Vec::new();
        for (i, inv) in scope.invariants().iter().enumerate() {
            for &obj in &objects {
                let mut env = vec![("this".to_string(), Value::Obj(obj))];
                match self.eval_bool(&inv.expr, &mut env) {
                    Ok(true) => {}
                    // Evaluation errors (e.g. a null dereference inside
                    // the invariant body) count as violations.
                    _ => broken.push((i, obj)),
                }
            }
        }
        self.read_frames = saved;
        broken
    }

    /// Checks a field read against every active declared read frame.
    fn check_read(&self, loc: Loc) -> Result<(), Stop> {
        for (i, frame) in self.read_frames.iter().enumerate() {
            let Some(frame) = frame else { continue };
            if !frame.permits(loc) {
                let attr = &self.scope.attr_info(loc.attr).name;
                return Err(wrong(
                    WrongKind::ReadViolation,
                    format!(
                        "read of {}·{attr} exceeds the reads clause of active frame {i}",
                        loc.obj
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Checks an array-slot read against every active declared read frame.
    fn check_read_slot(&self, obj: ObjId, index: i64) -> Result<(), Stop> {
        for (i, frame) in self.read_frames.iter().enumerate() {
            let Some(frame) = frame else { continue };
            if !frame.permits_slot(obj) {
                return Err(wrong(
                    WrongKind::ReadViolation,
                    format!(
                        "read of slot {obj}[{index}] exceeds the reads clause of active frame {i}"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Whether passing `args` violates owner exclusion against the
    /// callee's licensed effects — for ordinary pivots, elem-pivot arrays,
    /// and array elements.
    fn owner_exclusion_violated(&self, allowed: &AllowedEffects, args: &[Value]) -> bool {
        let pivots = self.scope.pivots();
        let rep = self.scope.rep_triples();
        let rep_elem = self.scope.rep_elem_triples();
        for value in args {
            let Some(v) = value.as_obj() else { continue };
            for x in self.store.objects() {
                for &f in &pivots {
                    if self.store.read(Loc { obj: x, attr: f }) != Value::Obj(v) {
                        continue;
                    }
                    // v = S(x·f); the callee must not be licensed on any
                    // x·a with a →f b or a ⇉f b.
                    for (a, f2, _) in rep.iter().chain(rep_elem.iter()) {
                        if *f2 == f && allowed.locs.contains(&Loc { obj: x, attr: *a }) {
                            return true;
                        }
                    }
                }
            }
            // v stored in a slot of an elem-pivot's array: the callee must
            // not be licensed on the owner.
            for &(a, f, _) in &rep_elem {
                for x in self.store.objects() {
                    let Value::Obj(arr) = self.store.read(Loc { obj: x, attr: f }) else {
                        continue;
                    };
                    let holds_v = self
                        .store
                        .slots()
                        .any(|((o, _), val)| o == arr && val == Value::Obj(v));
                    if holds_v && allowed.locs.contains(&Loc { obj: x, attr: a }) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Arbitrary effects within the top frame's license: models a call to
    /// an unknown implementation *that itself respects the paper's
    /// restrictions* — it writes only field locations (groups have no
    /// runtime presence), assigns pivots and slots only fresh objects or
    /// null, and never re-publishes existing object references (a
    /// restricted callee cannot copy confined values it has no name for).
    fn havoc(&mut self) -> Result<(), Stop> {
        self.tick()?;
        // Maybe allocate a few fresh objects.
        let allocs = self.oracle.choose(3);
        for _ in 0..allocs {
            self.store.alloc();
        }
        // Mutate an arbitrary subset of the licensed *field* locations.
        let frame = self.frames.last().expect("havoc runs inside a frame");
        let mut locs: Vec<Loc> = frame
            .locs
            .iter()
            .copied()
            .filter(|l| self.scope.attr_info(l.attr).kind == oolong_sema::AttrKind::Field)
            .collect();
        locs.sort();
        let mut arrays: Vec<ObjId> = frame.elem_arrays.iter().copied().collect();
        arrays.sort();
        let writes = if locs.is_empty() {
            0
        } else {
            self.oracle.choose(locs.len() + 1)
        };
        for _ in 0..writes {
            let loc = locs[self.oracle.choose(locs.len())];
            let value = if self.scope.is_pivot(loc.attr) {
                if self.oracle.choose(2) == 0 {
                    Value::Null
                } else {
                    Value::Obj(self.store.alloc())
                }
            } else {
                match self.oracle.choose(4) {
                    0 => Value::Null,
                    1 => Value::Bool(self.oracle.choose(2) == 0),
                    2 => Value::Int(self.oracle.choose(7) as i64 - 2),
                    _ => Value::Obj(self.store.alloc()),
                }
            };
            self.write_field(loc, value)?;
        }
        // Elementwise licenses let the callee rewrite array slots — within
        // the slot discipline: fresh objects or null only.
        if !arrays.is_empty() {
            let slot_writes = self.oracle.choose(3);
            for _ in 0..slot_writes {
                let arr = arrays[self.oracle.choose(arrays.len())];
                let index = self.oracle.choose(4) as i64;
                let value = if self.oracle.choose(2) == 0 {
                    Value::Null
                } else {
                    Value::Obj(self.store.alloc())
                };
                self.write_slot(arr, index, value)?;
            }
        }
        Ok(())
    }

    fn assign(
        &mut self,
        lhs: &Expr,
        value: Value,
        env: &mut Vec<(String, Value)>,
    ) -> Result<(), Stop> {
        match lhs {
            Expr::Id(x) => {
                let slot = env
                    .iter_mut()
                    .rev()
                    .find(|(name, _)| name == &x.text)
                    .expect("sema guarantees assignment targets are bound");
                slot.1 = value;
                Ok(())
            }
            Expr::Select { base, attr, .. } => {
                let obj = self.eval_obj(base, env)?;
                let attr_id = self
                    .scope
                    .attr(&attr.text)
                    .expect("sema resolves attributes");
                self.write_field(Loc { obj, attr: attr_id }, value)
            }
            Expr::Index { base, index, .. } => {
                let obj = self.eval_obj(base, env)?;
                let idx = self.eval_int(index, env)?;
                self.write_slot(obj, idx, value)
            }
            other => unreachable!("sema rejects assignment target {other:?}"),
        }
    }

    fn write_slot(
        &mut self,
        obj: crate::store::ObjId,
        index: i64,
        value: Value,
    ) -> Result<(), Stop> {
        for (i, frame) in self.frames.iter().enumerate() {
            if !frame.permits_slot(obj) {
                return Err(wrong(
                    WrongKind::EffectViolation,
                    format!("write to slot {obj}[{index}] exceeds the modifies list of active frame {i}"),
                ));
            }
        }
        self.store.write_slot(obj, index, value);
        Ok(())
    }

    fn write_field(&mut self, loc: Loc, value: Value) -> Result<(), Stop> {
        for (i, frame) in self.frames.iter().enumerate() {
            if !frame.permits(loc) {
                let attr = &self.scope.attr_info(loc.attr).name;
                return Err(wrong(
                    WrongKind::EffectViolation,
                    format!(
                        "write to {}·{attr} exceeds the modifies list of active frame {i}",
                        loc.obj
                    ),
                ));
            }
        }
        self.store.write(loc, value);
        Ok(())
    }

    fn eval_obj(&mut self, expr: &Expr, env: &mut Vec<(String, Value)>) -> Result<ObjId, Stop> {
        match self.eval(expr, env)? {
            Value::Obj(o) => Ok(o),
            Value::Null => Err(wrong(
                WrongKind::NullDereference,
                oolong_syntax::pretty::print_expr(expr),
            )),
            other => Err(wrong(
                WrongKind::TypeError,
                format!("dereference of non-object value {other}"),
            )),
        }
    }

    fn eval_bool(&mut self, expr: &Expr, env: &mut Vec<(String, Value)>) -> Result<bool, Stop> {
        match self.eval(expr, env)? {
            Value::Bool(b) => Ok(b),
            other => Err(wrong(
                WrongKind::TypeError,
                format!("condition evaluated to non-boolean {other}"),
            )),
        }
    }

    fn eval_int(&mut self, expr: &Expr, env: &mut Vec<(String, Value)>) -> Result<i64, Stop> {
        match self.eval(expr, env)? {
            Value::Int(n) => Ok(n),
            other => Err(wrong(
                WrongKind::TypeError,
                format!("arithmetic on non-integer value {other}"),
            )),
        }
    }

    fn eval(&mut self, expr: &Expr, env: &mut Vec<(String, Value)>) -> Result<Value, Stop> {
        match expr {
            Expr::Const(c, _) => Ok(match c {
                Const::Null => Value::Null,
                Const::Bool(b) => Value::Bool(*b),
                Const::Int(n) => Value::Int(*n),
            }),
            Expr::Id(x) => Ok(env
                .iter()
                .rev()
                .find(|(name, _)| name == &x.text)
                .expect("sema guarantees variables are bound")
                .1),
            Expr::Select { base, attr, .. } => {
                let obj = self.eval_obj(base, env)?;
                let attr_id = self
                    .scope
                    .attr(&attr.text)
                    .expect("sema resolves attributes");
                let loc = Loc { obj, attr: attr_id };
                self.check_read(loc)?;
                Ok(self.store.read(loc))
            }
            Expr::Index { base, index, .. } => {
                let obj = self.eval_obj(base, env)?;
                let idx = self.eval_int(index, env)?;
                self.check_read_slot(obj, idx)?;
                Ok(self.store.read_slot(obj, idx))
            }
            Expr::Unary { op, operand, .. } => match op {
                UnaryOp::Not => Ok(Value::Bool(!self.eval_bool(operand, env)?)),
                UnaryOp::Neg => {
                    let n = self.eval_int(operand, env)?;
                    n.checked_neg()
                        .map(Value::Int)
                        .ok_or_else(|| wrong(WrongKind::TypeError, "integer overflow in negation"))
                }
            },
            Expr::Binary { op, lhs, rhs, .. } => match op {
                BinOp::Eq => Ok(Value::Bool(self.eval(lhs, env)? == self.eval(rhs, env)?)),
                BinOp::Ne => Ok(Value::Bool(self.eval(lhs, env)? != self.eval(rhs, env)?)),
                BinOp::And => Ok(Value::Bool(
                    self.eval_bool(lhs, env)? & self.eval_bool(rhs, env)?,
                )),
                BinOp::Or => Ok(Value::Bool(
                    self.eval_bool(lhs, env)? | self.eval_bool(rhs, env)?,
                )),
                BinOp::Lt => Ok(Value::Bool(
                    self.eval_int(lhs, env)? < self.eval_int(rhs, env)?,
                )),
                BinOp::Le => Ok(Value::Bool(
                    self.eval_int(lhs, env)? <= self.eval_int(rhs, env)?,
                )),
                BinOp::Gt => Ok(Value::Bool(
                    self.eval_int(lhs, env)? > self.eval_int(rhs, env)?,
                )),
                BinOp::Ge => Ok(Value::Bool(
                    self.eval_int(lhs, env)? >= self.eval_int(rhs, env)?,
                )),
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    let a = self.eval_int(lhs, env)?;
                    let b = self.eval_int(rhs, env)?;
                    let r = match op {
                        BinOp::Add => a.checked_add(b),
                        BinOp::Sub => a.checked_sub(b),
                        BinOp::Mul => a.checked_mul(b),
                        _ => unreachable!(),
                    };
                    r.map(Value::Int)
                        .ok_or_else(|| wrong(WrongKind::TypeError, "integer overflow"))
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_syntax::parse_program;

    fn scope_of(src: &str) -> Scope {
        Scope::analyze(&parse_program(src).unwrap()).unwrap()
    }

    fn run_first(src: &str, proc: &str) -> RunOutcome {
        let scope = scope_of(src);
        let mut interp = Interp::new(&scope, ExecConfig::default(), FirstOracle);
        interp.run_proc_fresh(proc)
    }

    #[test]
    fn completes_trivially() {
        assert_eq!(
            run_first("proc p(t) impl p(t) { skip }", "p"),
            RunOutcome::Completed
        );
    }

    #[test]
    fn assert_false_goes_wrong() {
        match run_first("proc p(t) impl p(t) { assert false }", "p") {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::AssertFailed),
            other => panic!("expected wrong, got {other:?}"),
        }
    }

    #[test]
    fn assume_false_blocks() {
        assert_eq!(
            run_first("proc p(t) impl p(t) { assume false ; assert false }", "p"),
            RunOutcome::Blocked
        );
    }

    #[test]
    fn field_write_and_read() {
        assert_eq!(
            run_first(
                "field f proc p(t) modifies t.f
                 impl p(t) { t.f := 3 ; assert t.f = 3 }",
                "p"
            ),
            RunOutcome::Completed
        );
    }

    #[test]
    fn unlicensed_write_is_effect_violation() {
        match run_first("field f proc p(t) impl p(t) { t.f := 3 }", "p") {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::EffectViolation),
            other => panic!("expected effect violation, got {other:?}"),
        }
    }

    #[test]
    fn group_license_admits_member_writes() {
        assert_eq!(
            run_first(
                "group g field f in g proc p(t) modifies t.g impl p(t) { t.f := 1 }",
                "p"
            ),
            RunOutcome::Completed
        );
    }

    #[test]
    fn fresh_objects_are_freely_writable() {
        assert_eq!(
            run_first(
                "field f proc p(t) impl p(t) { var x in x := new() ; x.f := 1 end }",
                "p"
            ),
            RunOutcome::Completed
        );
    }

    #[test]
    fn nested_call_monitor_catches_caller_overreach() {
        // callee has license on u.f (passed t), but the outer frame of p
        // has none — the write inside callee must be flagged.
        match run_first(
            "field f
             proc callee(u) modifies u.f
             impl callee(u) { u.f := 1 }
             proc p(t)
             impl p(t) { callee(t) }",
            "p",
        ) {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::EffectViolation),
            other => panic!("expected effect violation, got {other:?}"),
        }
    }

    #[test]
    fn nested_call_within_license_completes() {
        assert_eq!(
            run_first(
                "field f
                 proc callee(u) modifies u.f
                 impl callee(u) { u.f := 1 }
                 proc p(t) modifies t.f
                 impl p(t) { callee(t) }",
                "p"
            ),
            RunOutcome::Completed
        );
    }

    #[test]
    fn null_dereference_detected() {
        match run_first(
            "field f proc p(t) impl p(t) { var x in var y in y := x.f end end }",
            "p",
        ) {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::NullDereference),
            other => panic!("expected null deref, got {other:?}"),
        }
    }

    #[test]
    fn type_errors_detected() {
        match run_first("proc p(t) impl p(t) { assert t + 1 = 2 }", "p") {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::TypeError),
            other => panic!("expected type error, got {other:?}"),
        }
    }

    #[test]
    fn if_branches_on_condition() {
        assert_eq!(
            run_first(
                "proc p(t) impl p(t) {
                   var x in
                     if t = null then x := 1 else x := 2 end ;
                     assert x = 2
                   end
                 }",
                "p"
            ),
            RunOutcome::Completed,
            "t is a fresh object, never null"
        );
    }

    #[test]
    fn arithmetic_works() {
        assert_eq!(
            run_first(
                "field v proc p(t) modifies t.v
                 impl p(t) { t.v := 3 ; t.v := t.v + 1 ; assert t.v = 4 }",
                "p"
            ),
            RunOutcome::Completed
        );
    }

    #[test]
    fn recursion_hits_fuel() {
        assert_eq!(
            run_first("proc p(t) impl p(t) { p(t) }", "p"),
            RunOutcome::OutOfFuel
        );
    }

    #[test]
    fn havoc_respects_callee_spec_but_outer_monitor_sees_it() {
        // push has no implementation: havoc may write t.f; with seed search
        // we find a run where it does, and the outer frame (licensed) is
        // fine.
        let scope = scope_of(
            "field f
             proc push(u) modifies u.f
             proc p(t) modifies t.f
             impl p(t) { push(t) }",
        );
        for seed in 0..20 {
            let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
            let out = interp.run_proc_fresh("p");
            assert!(out.is_acceptable(), "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn havoc_can_exceed_unlicensed_caller() {
        // p has no license; havoc of push (licensed on u.f via its own
        // spec) must trip p's frame on some seed.
        let scope = scope_of(
            "field f
             proc push(u) modifies u.f
             proc p(t)
             impl p(t) { push(t) }",
        );
        let mut saw_violation = false;
        for seed in 0..40 {
            let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
            if let RunOutcome::Wrong(w) = interp.run_proc_fresh("p") {
                assert_eq!(w.kind, WrongKind::EffectViolation);
                saw_violation = true;
            }
        }
        assert!(saw_violation, "some havoc run should write t.f");
    }

    #[test]
    fn choice_explores_both_arms() {
        let scope = scope_of("proc p(t) impl p(t) { skip [] assert false }");
        let mut outcomes = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
            outcomes.insert(match interp.run_proc_fresh("p") {
                RunOutcome::Completed => "ok",
                RunOutcome::Wrong(_) => "wrong",
                _ => "other",
            });
        }
        assert!(
            outcomes.contains("ok") && outcomes.contains("wrong"),
            "{outcomes:?}"
        );
    }

    const ARRAY_TABLE: &str = "group state
group bucketstate
field count in bucketstate
field buckets in state maps elem bucketstate into state
proc binc(b) modifies b.bucketstate
impl binc(b) { assume b != null ; if b.count = null then b.count := 1 else b.count := b.count + 1 end }
proc tinit(t) modifies t.state
impl tinit(t) {
  assume t != null ;
  t.buckets := new() ;
  t.buckets[0] := new() ;
  t.buckets[1] := new()
}
proc touch(t) modifies t.state
impl touch(t) {
  assume t != null && t.buckets != null && t.buckets[0] != null ;
  binc(t.buckets[0])
}
proc pipeline(t) modifies t.state
impl pipeline(t) { tinit(t) ; touch(t) }
";

    #[test]
    fn array_slots_and_elements_are_licensed_through_elem_closure() {
        let scope = scope_of(ARRAY_TABLE);
        let mut interp = Interp::new(&scope, ExecConfig::default(), FirstOracle);
        assert_eq!(interp.run_proc_fresh("pipeline"), RunOutcome::Completed);
        // The element's count was bumped through the delegated call.
        let count = scope.attr("count").unwrap();
        let buckets = scope.attr("buckets").unwrap();
        let store = interp.store();
        let t = crate::store::ObjId(0);
        let arr = store
            .read(Loc {
                obj: t,
                attr: buckets,
            })
            .as_obj()
            .expect("array installed");
        let elem = store.read_slot(arr, 0).as_obj().expect("element installed");
        assert_eq!(
            store.read(Loc {
                obj: elem,
                attr: count
            }),
            Value::Int(1)
        );
    }

    #[test]
    fn unlicensed_slot_write_is_an_effect_violation() {
        let scope = scope_of(
            "group state
             field buckets in state maps elem state into state
             proc sneak(t)
             impl sneak(t) { assume t != null && t.buckets != null ; t.buckets[0] := null }",
        );
        let mut interp = Interp::new(&scope, ExecConfig::default(), FirstOracle);
        // Install an array first, under an unrestricted frame.
        let buckets = scope.attr("buckets").unwrap();
        let t = interp.store_mut().alloc();
        let arr = interp.store_mut().alloc();
        interp.store_mut().write(
            Loc {
                obj: t,
                attr: buckets,
            },
            Value::Obj(arr),
        );
        let (impl_id, _) = interp_scope_first_impl(&scope);
        match interp.run_impl(impl_id, &[Value::Obj(t)]) {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::EffectViolation),
            other => panic!("expected effect violation, got {other:?}"),
        }
    }

    #[test]
    fn unlicensed_element_attr_write_is_an_effect_violation() {
        let scope = scope_of(
            "group state
             group bucketstate
             field count in bucketstate
             field buckets in state maps elem bucketstate into state
             proc elem_write(b) modifies b.bucketstate
             impl elem_write(b) { assume b != null ; b.count := 1 }
             proc caller(t)
             impl caller(t) {
               assume t != null && t.buckets != null && t.buckets[0] != null ;
               elem_write(t.buckets[0])
             }",
        );
        let mut interp = Interp::new(&scope, ExecConfig::default(), FirstOracle);
        let buckets = scope.attr("buckets").unwrap();
        let t = interp.store_mut().alloc();
        let arr = interp.store_mut().alloc();
        let e = interp.store_mut().alloc();
        interp.store_mut().write(
            Loc {
                obj: t,
                attr: buckets,
            },
            Value::Obj(arr),
        );
        interp.store_mut().write_slot(arr, 0, Value::Obj(e));
        let caller = scope
            .impls()
            .find(|(_, i)| scope.proc_info(i.proc).name == "caller")
            .map(|(id, _)| id)
            .unwrap();
        // caller has no license: the element write inside elem_write trips
        // caller's frame.
        match interp.run_impl(caller, &[Value::Obj(t)]) {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::EffectViolation),
            other => panic!("expected effect violation, got {other:?}"),
        }
    }

    fn interp_scope_first_impl(scope: &Scope) -> (ImplId, ()) {
        let (id, _) = scope.impls().next().expect("impl exists");
        (id, ())
    }

    #[test]
    fn read_audit_flags_undeclared_read() {
        // q declares reads t.f but reads t.h as well.
        let scope = scope_of(
            "field f field h
             proc q(t) reads t.f
             impl q(t) { assert t.f = t.f ; assert t.h = t.h }",
        );
        let config = ExecConfig {
            check_reads: true,
            ..ExecConfig::default()
        };
        let mut interp = Interp::new(&scope, config, FirstOracle);
        match interp.run_proc_fresh("q") {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::ReadViolation),
            other => panic!("expected read violation, got {other:?}"),
        }
    }

    #[test]
    fn read_audit_admits_group_covered_and_fresh_reads() {
        let scope = scope_of(
            "group g field f in g field h
             proc q(t) reads t.g
             impl q(t) {
               assert t.f = t.f ;
               var x in x := new() ; assert x.h = x.h end
             }",
        );
        let config = ExecConfig {
            check_reads: true,
            ..ExecConfig::default()
        };
        let mut interp = Interp::new(&scope, config, FirstOracle);
        assert_eq!(interp.run_proc_fresh("q"), RunOutcome::Completed);
    }

    #[test]
    fn read_audit_off_by_default() {
        let scope = scope_of(
            "field f field h
             proc q(t) reads t.f
             impl q(t) { assert t.h = t.h }",
        );
        let mut interp = Interp::new(&scope, ExecConfig::default(), FirstOracle);
        assert_eq!(interp.run_proc_fresh("q"), RunOutcome::Completed);
    }

    #[test]
    fn invariant_broken_at_exit_detected() {
        // p zeroes then clobbers f: the invariant f = 0 fails at exit.
        let scope = scope_of(
            "group g field f in g
             invariant this.f = 0
             proc p(t) modifies t.g
             impl p(t) { t.f := 1 }",
        );
        let config = ExecConfig {
            check_invariants: true,
            ..ExecConfig::default()
        };
        let mut interp = Interp::new(&scope, config, FirstOracle);
        let t = interp.store_mut().alloc();
        let f = scope.attr("f").unwrap();
        interp
            .store_mut()
            .write(Loc { obj: t, attr: f }, Value::Int(0));
        let (impl_id, _) = interp_scope_first_impl(&scope);
        match interp.run_impl(impl_id, &[Value::Obj(t)]) {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::InvariantBroken),
            other => panic!("expected invariant broken, got {other:?}"),
        }
    }

    #[test]
    fn invariant_reestablished_at_exit_completes() {
        let scope = scope_of(
            "group g field f in g
             invariant this.f = 0
             proc p(t) modifies t.g
             impl p(t) { t.f := 1 ; t.f := 0 }",
        );
        let config = ExecConfig {
            check_invariants: true,
            ..ExecConfig::default()
        };
        let mut interp = Interp::new(&scope, config, FirstOracle);
        let t = interp.store_mut().alloc();
        let f = scope.attr("f").unwrap();
        interp
            .store_mut()
            .write(Loc { obj: t, attr: f }, Value::Int(0));
        let (impl_id, _) = interp_scope_first_impl(&scope);
        assert_eq!(
            interp.run_impl(impl_id, &[Value::Obj(t)]),
            RunOutcome::Completed
        );
    }

    #[test]
    fn entry_broken_invariant_is_exempt_not_wrong() {
        // The pre-store breaks the invariant (f defaults to null): the
        // static hypothesis is vacuous for that object, so the run is
        // not flagged at exit.
        let scope = scope_of(
            "group g field f in g
             invariant this.f = 0
             proc p(t) modifies t.g
             impl p(t) { skip }",
        );
        let config = ExecConfig {
            check_invariants: true,
            ..ExecConfig::default()
        };
        let mut interp = Interp::new(&scope, config, FirstOracle);
        let t = interp.store_mut().alloc();
        let (impl_id, _) = interp_scope_first_impl(&scope);
        assert_eq!(
            interp.run_impl(impl_id, &[Value::Obj(t)]),
            RunOutcome::Completed
        );
    }

    #[test]
    fn fresh_object_must_establish_invariant() {
        // Objects allocated during the run have no entry exemption: the
        // body must establish the invariant for them.
        let scope = scope_of(
            "group g field f in g
             invariant this.f = 0
             proc p(t) modifies t.g
             impl p(t) { var x in x := new() end }",
        );
        let config = ExecConfig {
            check_invariants: true,
            ..ExecConfig::default()
        };
        let mut interp = Interp::new(&scope, config, FirstOracle);
        let (impl_id, _) = interp_scope_first_impl(&scope);
        match interp.run_impl(impl_id, &[Value::Null]) {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::InvariantBroken),
            other => panic!("expected invariant broken, got {other:?}"),
        }
    }

    #[test]
    fn invariant_checked_at_call_boundary() {
        // p breaks the invariant, then calls q: flagged at the call, not
        // only at exit.
        let scope = scope_of(
            "group g field f in g
             invariant this.f = 0
             proc q(u)
             impl q(u) { skip }
             proc p(t) modifies t.g
             impl p(t) { t.f := 1 ; q(t) ; t.f := 0 }",
        );
        let config = ExecConfig {
            check_invariants: true,
            ..ExecConfig::default()
        };
        let mut interp = Interp::new(&scope, config, FirstOracle);
        let t = interp.store_mut().alloc();
        let f = scope.attr("f").unwrap();
        interp
            .store_mut()
            .write(Loc { obj: t, attr: f }, Value::Int(0));
        let (impl_id, _) = interp_scope_first_impl2(&scope, "p");
        match interp.run_impl(impl_id, &[Value::Obj(t)]) {
            RunOutcome::Wrong(w) => {
                assert_eq!(w.kind, WrongKind::InvariantBroken);
                assert!(w.detail.contains("call to `q`"), "{}", w.detail);
            }
            other => panic!("expected invariant broken at call, got {other:?}"),
        }
    }

    fn interp_scope_first_impl2(scope: &Scope, name: &str) -> (ImplId, ()) {
        let id = scope
            .impls()
            .find(|(_, i)| scope.proc_info(i.proc).name == name)
            .map(|(id, _)| id)
            .unwrap();
        (id, ())
    }

    #[test]
    fn owner_exclusion_event_recorded() {
        // Passing st.vec to a callee licensed on st.contents — but note
        // pivot uniqueness forbids copying st.vec; the call passes the
        // pivot value directly as an argument, which sema allows.
        let scope = scope_of(
            "group contents
             group elems
             field cnt in elems
             field vec in contents maps elems into contents
             proc w(st, v) modifies st.contents
             proc setup(st) modifies st.contents
             impl setup(st) { st.vec := new() ; w(st, st.vec) }",
        );
        let config = ExecConfig {
            check_owner_exclusion: true,
            ..ExecConfig::default()
        };
        let mut interp = Interp::new(&scope, config, FirstOracle);
        match interp.run_proc_fresh("setup") {
            RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::OwnerExclusion),
            other => panic!("expected owner-exclusion wrong, got {other:?}"),
        }
        assert_eq!(interp.owner_exclusion_events, 1);
    }
}
