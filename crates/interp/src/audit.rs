//! Store-invariant audits: executable counterparts of background axioms
//! (6) and (7).
//!
//! The paper proves that the pivot uniqueness restriction maintains the
//! invariant that non-null pivot values are unique (axiom (6)), and that
//! no location of a pivot-referenced object includes a group of its owner
//! (axiom (7)). These audits check concrete stores for those invariants;
//! the property tests run them after every interpreter run of a
//! restriction-respecting program.

use crate::denote::included_locations;
use crate::store::{Loc, Store, Value};
use oolong_sema::Scope;

/// Checks axiom (6) on a concrete store: the non-null object value of a
/// pivot field occurs at no other written location.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn audit_pivot_uniqueness(scope: &Scope, store: &Store) -> Result<(), String> {
    let pivots = scope.pivots();
    for &f in &pivots {
        for x in store.objects() {
            let pivot_loc = Loc { obj: x, attr: f };
            let Value::Obj(v) = store.read(pivot_loc) else {
                continue;
            };
            for (other, value) in store.locations() {
                if other != pivot_loc && value == Value::Obj(v) {
                    return Err(format!(
                        "pivot {}·{} and {}·{} both hold {}",
                        x,
                        scope.attr_info(f).name,
                        other.obj,
                        scope.attr_info(other.attr).name,
                        Value::Obj(v),
                    ));
                }
            }
            // The slot discipline keeps pivot values out of slots too.
            for ((slot_obj, idx), value) in store.slots() {
                if value == Value::Obj(v) {
                    return Err(format!(
                        "pivot {}·{} and slot {}[{}] both hold {}",
                        x,
                        scope.attr_info(f).name,
                        slot_obj,
                        idx,
                        Value::Obj(v),
                    ));
                }
            }
        }
    }
    // Slot values are unique among slots and against every field.
    let slot_values: Vec<((crate::store::ObjId, i64), Value)> = store
        .slots()
        .filter(|(_, v)| matches!(v, Value::Obj(_)))
        .collect();
    for (i, &((o1, i1), v1)) in slot_values.iter().enumerate() {
        for &((o2, i2), v2) in &slot_values[i + 1..] {
            if v1 == v2 {
                return Err(format!("slots {o1}[{i1}] and {o2}[{i2}] both hold {v1}"));
            }
        }
        for (other, value) in store.locations() {
            if value == v1 {
                return Err(format!(
                    "slot {o1}[{i1}] and {}·{} both hold {v1}",
                    other.obj,
                    scope.attr_info(other.attr).name,
                ));
            }
        }
    }
    Ok(())
}

/// Checks axiom (7) on a concrete store: for every pivot field `f` of `x`
/// mapping into group `g` with value `y ≠ null`, no location `y·b`
/// includes `x·g`.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn audit_acyclicity(scope: &Scope, store: &Store) -> Result<(), String> {
    for (g, f, _) in scope.rep_triples() {
        for x in store.objects() {
            let Value::Obj(y) = store.read(Loc { obj: x, attr: f }) else {
                continue;
            };
            let owner_loc = Loc { obj: x, attr: g };
            for (b, _) in scope.attrs() {
                let from = Loc { obj: y, attr: b };
                if included_locations(scope, store, from).contains(&owner_loc) {
                    return Err(format!(
                        "cycle: {}·{} ≽ {}·{} while {}·{} = {}",
                        y,
                        scope.attr_info(b).name,
                        x,
                        scope.attr_info(g).name,
                        x,
                        scope.attr_info(f).name,
                        Value::Obj(y),
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_syntax::parse_program;

    fn scope() -> Scope {
        Scope::analyze(
            &parse_program(
                "group contents
                 group elems
                 field cnt in elems
                 field obj
                 field vec maps elems into contents",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn clean_store_passes_both_audits() {
        let s = scope();
        let mut store = Store::new();
        let st = store.alloc();
        let v = store.alloc();
        let vec = s.attr("vec").unwrap();
        store.write(Loc { obj: st, attr: vec }, Value::Obj(v));
        assert!(audit_pivot_uniqueness(&s, &store).is_ok());
        assert!(audit_acyclicity(&s, &store).is_ok());
    }

    #[test]
    fn aliased_pivot_fails_uniqueness() {
        let s = scope();
        let mut store = Store::new();
        let st = store.alloc();
        let v = store.alloc();
        let vec = s.attr("vec").unwrap();
        let obj = s.attr("obj").unwrap();
        store.write(Loc { obj: st, attr: vec }, Value::Obj(v));
        // The §3.0 leak: r.obj := st.vec.
        store.write(Loc { obj: st, attr: obj }, Value::Obj(v));
        let err = audit_pivot_uniqueness(&s, &store).unwrap_err();
        assert!(err.contains("both hold"), "{err}");
    }

    #[test]
    fn two_pivots_sharing_a_value_fail_uniqueness() {
        let s = scope();
        let mut store = Store::new();
        let st1 = store.alloc();
        let st2 = store.alloc();
        let v = store.alloc();
        let vec = s.attr("vec").unwrap();
        store.write(
            Loc {
                obj: st1,
                attr: vec,
            },
            Value::Obj(v),
        );
        store.write(
            Loc {
                obj: st2,
                attr: vec,
            },
            Value::Obj(v),
        );
        assert!(audit_pivot_uniqueness(&s, &store).is_err());
    }

    #[test]
    fn self_referencing_pivot_fails_acyclicity() {
        let s = scope();
        let mut store = Store::new();
        let st = store.alloc();
        let vec = s.attr("vec").unwrap();
        // st.vec = st: st's own elems group then includes st.contents?
        // elems ⊒ nothing of contents, so build the real cycle:
        // contents →vec elems at object st pointing to st itself makes
        // y = st, and st·elems does not include st·contents; the cycle
        // needs the included side: st·contents ≽ st·contents via b = contents.
        store.write(Loc { obj: st, attr: vec }, Value::Obj(st));
        let err = audit_acyclicity(&s, &store).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn slot_aliasing_fails_uniqueness() {
        let s =
            Scope::analyze(&parse_program("group g field arr in g maps elem g into g").unwrap())
                .unwrap();
        let mut store = Store::new();
        let _t = store.alloc();
        let arr = store.alloc();
        let e = store.alloc();
        store.write_slot(arr, 0, Value::Obj(e));
        assert!(audit_pivot_uniqueness(&s, &store).is_ok());
        // The same element in two slots violates the slot discipline.
        store.write_slot(arr, 1, Value::Obj(e));
        assert!(audit_pivot_uniqueness(&s, &store).is_err());
    }

    #[test]
    fn cyclic_list_shape_is_fine_when_groups_align() {
        // The linked-list cyclic *inclusion* is fine; the audit rejects
        // only owner cycles through pivots. a.next = b with no back edge.
        let s = Scope::analyze(
            &parse_program("group g field value in g field next maps g into g").unwrap(),
        )
        .unwrap();
        let next = s.attr("next").unwrap();
        let mut store = Store::new();
        let a = store.alloc();
        let b = store.alloc();
        store.write(Loc { obj: a, attr: next }, Value::Obj(b));
        assert!(audit_acyclicity(&s, &store).is_ok());
        // A heap cycle a → b → a violates (7): b·g ≽ a·g while a.next = b.
        store.write(Loc { obj: b, attr: next }, Value::Obj(a));
        assert!(audit_acyclicity(&s, &store).is_err());
    }
}
