//! A reference interpreter for oolong with a **runtime side-effect
//! monitor**: the operational ground truth against which the static
//! checker of the `datagroups` crate is validated.
//!
//! * [`store`] — runtime values and the object store;
//! * [`denote`] — the concrete denotation of modifies lists (the
//!   operational mirror of `mod`/`incl`);
//! * [`exec`] — bounded-nondeterminism execution: an [`Oracle`] resolves
//!   choice commands, implementation dispatch, and arbitrary values;
//!   calls to procedures without implementations are *havocked* within
//!   their specification, modelling arbitrary program extensions;
//! * [`audit`] — executable checks of the store invariants behind
//!   background axioms (6) and (7).
//!
//! # Example
//!
//! ```
//! use oolong_interp::{ExecConfig, FirstOracle, Interp, RunOutcome};
//! use oolong_sema::Scope;
//! use oolong_syntax::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "field f
//!      proc p(t) modifies t.f
//!      impl p(t) { t.f := 3 ; assert t.f = 3 }",
//! )?;
//! let scope = Scope::analyze(&program)?;
//! let mut interp = Interp::new(&scope, ExecConfig::default(), FirstOracle);
//! assert_eq!(interp.run_proc_fresh("p"), RunOutcome::Completed);
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod denote;
pub mod exec;
pub mod store;

pub use audit::{audit_acyclicity, audit_pivot_uniqueness};
pub use denote::{allowed_effects, included_locations, AllowedEffects};
pub use exec::{ExecConfig, FirstOracle, Interp, Oracle, RngOracle, RunOutcome, Wrong, WrongKind};
pub use store::{Loc, ObjId, Store, Value};
