//! Offline, dependency-free stand-in for the subset of the `criterion`
//! benchmark API used by this workspace: `Criterion`, benchmark groups with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! The container this workspace builds in has no crates.io access.
//! Statistics are intentionally simple: each benchmark runs a warmup pass
//! plus `sample_size` timed samples and reports min / median / max
//! wall-clock time per iteration to stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of the
/// standard hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name with an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Times the closure under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warmup and then `sample_size` timed times,
    /// recording each run's wall-clock duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    println!(
        "{name:<40} time: [{} {} {}]",
        format_duration(sorted[0]),
        format_duration(median),
        format_duration(*sorted.last().expect("nonempty"))
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a nullary routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.label), &bencher.samples);
        self
    }

    /// Benchmarks a routine parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.label), &bencher.samples);
        self
    }

    /// Ends the group (a no-op; results are printed as they complete).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("## {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a nullary routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }
}

/// Declares a group function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
