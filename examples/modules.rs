//! Explicit modules (our extension of oolong, implementing the paper's
//! prose: "the scope of an implementation module M would typically be the
//! set of declarations in M and in the interface modules that M
//! transitively imports").
//!
//! The program is the stack-over-vector system split into interface and
//! implementation modules. `check_modular` verifies each module against
//! exactly its import closure: the vector implementation never sees the
//! stack, and neither implementation module sees the other's body.
//!
//! ```sh
//! cargo run --example modules
//! ```

use oolong::corpus::paper::MODULAR_STACK;
use oolong::datagroups::{check_modular, CheckOptions, Checker};
use oolong::sema::{modules, visible_program};
use oolong::syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = MODULAR_STACK.source;
    let program = parse_program(source).map_err(|e| e.render(source))?;

    // What each module can see.
    println!("module structure:");
    for info in modules::modules(&program).map_err(|e| e.render(source))? {
        let visible = visible_program(&program, &info.name).map_err(|e| e.render(source))?;
        println!(
            "  {:<18} {} own declarations, {} visible (imports: {})",
            info.name,
            info.decl_count,
            visible.decls.len(),
            if info.imports.is_empty() {
                "-".to_string()
            } else {
                info.imports.join(", ")
            },
        );
    }

    // Modular verification: each module in its own scope.
    let report = check_modular(&program, &CheckOptions::default())?;
    println!("\nmodular check:\n{report}");
    assert!(report.all_verified());

    // Whole-program verification agrees (scope monotonicity in practice:
    // flattening only grows every module's scope).
    let whole = Checker::new(&program, CheckOptions::default())?.check_all();
    println!("\nwhole-program check:\n{whole}");
    assert!(whole.all_verified());

    // The module system rejects structural errors.
    let broken = parse_program("module a imports ghost { group g }")?;
    let err = check_modular(&broken, &CheckOptions::default()).unwrap_err();
    println!("\nbroken import: {err}");
    Ok(())
}
