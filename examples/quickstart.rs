//! Quickstart: parse an oolong program, check its side-effect
//! specifications, and run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use oolong::datagroups::{CheckOptions, Checker};
use oolong::interp::{ExecConfig, Interp, RngOracle};
use oolong::sema::Scope;
use oolong::syntax::parse_program;

const SOURCE: &str = "
// A counter object: `state` is the abstract data group, `ticks` its
// private representation.
group state
field ticks in state

proc reset(c) modifies c.state
impl reset(c) { assume c != null ; c.ticks := 0 }

proc tick(c) modifies c.state
impl tick(c) { assume c != null ; c.ticks := c.ticks + 1 }

// `observe` has no modifies list: it may not change anything.
proc observe(c)
impl observe(c) {
  assume c != null ;
  var before in
    before := c.ticks ;
    assert before = c.ticks
  end
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE).map_err(|e| e.render(SOURCE))?;

    // 1. Statically check every implementation against its modifies list.
    let checker = Checker::new(&program, CheckOptions::default()).map_err(|e| e.render(SOURCE))?;
    let report = checker.check_all();
    println!("static checker:\n{report}\n");
    assert!(report.all_verified());

    // 2. Run the program under the interpreter's runtime effect monitor.
    let scope = Scope::analyze(&program).map_err(|e| e.render(SOURCE))?;
    for seed in 0..10 {
        let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
        let outcome = interp.run_proc_fresh("observe");
        assert!(outcome.is_acceptable(), "seed {seed}: {outcome:?}");
    }
    println!("interpreter: 10 random runs of `observe`, no violations");

    // 3. A buggy variant — writing without a license — is rejected.
    let buggy = parse_program(
        "group state
         field ticks in state
         proc observe(c)
         impl observe(c) { assume c != null ; c.ticks := 0 }",
    )
    .expect("parses");
    let report = Checker::new(&buggy, CheckOptions::default())?.check_all();
    println!("\nbuggy variant:\n{report}");
    assert!(!report.all_verified());
    Ok(())
}
