//! Reproduces the unsoundness story of Section 3: a *naive* modular
//! checker (closed-world about inclusions, no alias confinement) passes
//! every module of a program whose linked execution fails an assertion at
//! runtime. The paper's restrictions repair it: the leaking module is
//! rejected, and the client's verdict is stable across scopes.
//!
//! The program is the paper's §3.0 scenario made executable: `setup`
//! installs a vector behind the stack's pivot `vec` and *leaks* the pivot
//! value through `r.obj`; the client `q` then observes `push(st, 3)`
//! changing `v.cnt` — the "unexpected side effect between the contents
//! group of a stack and the cnt field of the stack's underlying vector".
//!
//! ```sh
//! cargo run --example unsound_naive
//! ```

use oolong::datagroups::{CheckOptions, Checker};
use oolong::interp::{ExecConfig, Interp, RngOracle, RunOutcome, WrongKind};
use oolong::sema::Scope;
use oolong::syntax::parse_program;

/// The interface scope: what the client module sees.
const INTERFACE: &str = "
group contents
field cnt
field obj
proc push(st, o) modifies st.contents
proc setup(st, r) modifies st.contents, r.obj
";

/// The client module: the paper's `q`, adapted to call `setup`.
const CLIENT: &str = "
proc q()
impl q() {
  var st, result, v, n in
    st := new() ;
    result := new() ;
    setup(st, result) ;
    v := result.obj ;
    assume v != null ;
    n := v.cnt ;
    push(st, 3) ;
    assert n = v.cnt
  end
}
";

/// The private stack module: the pivot declaration and the leaking
/// implementation (every write is licensed — `vec` is in `contents` — but
/// `r.obj := st.vec` copies the pivot value out).
const STACK_IMPL: &str = "
field vec in contents maps cnt into contents
impl setup(st, r) {
  st.vec := new() ;
  r.obj := st.vec
}
";

fn verdict(source: &str, proc: &str, naive: bool) -> String {
    let program = parse_program(source).expect("parses");
    let options = CheckOptions {
        naive,
        ..CheckOptions::default()
    };
    let report = Checker::new(&program, options)
        .expect("analyses")
        .check_all();
    report
        .for_proc(proc)
        .expect("checked")
        .verdict
        .label()
        .to_string()
}

fn main() {
    let client_scope = format!("{INTERFACE}{CLIENT}");
    let stack_scope = format!("{INTERFACE}{STACK_IMPL}");
    let whole = format!("{INTERFACE}{CLIENT}{STACK_IMPL}");

    // --- The naive checker passes every module ----------------------------
    let naive_q = verdict(&client_scope, "q", true);
    let naive_setup = verdict(&stack_scope, "setup", true);
    println!("naive checker, module by module:");
    println!("  q     in the client scope: {naive_q}");
    println!("  setup in the stack scope:  {naive_setup}");
    assert_eq!(naive_q, "verified");
    assert_eq!(naive_setup, "verified");

    // ... yet its verdict on q degrades once the pivot is visible: the
    // naive system violates scope monotonicity.
    let naive_q_whole = verdict(&whole, "q", true);
    println!("  q     in the whole program: {naive_q_whole}   <- monotonicity violated");
    assert_ne!(naive_q_whole, "verified");

    // --- The runtime ground truth -----------------------------------------
    // The linked program reaches the assertion failure: push (havocked
    // within its spec, like any extension implementation) may write v.cnt
    // because v IS the stack's vector.
    let program = parse_program(&whole).expect("parses");
    let scope = Scope::analyze(&program).expect("analyses");
    let mut assert_failures = 0;
    let mut acceptable = 0;
    for seed in 0..200 {
        let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
        match interp.run_proc_fresh("q") {
            RunOutcome::Wrong(w) if w.kind == WrongKind::AssertFailed => assert_failures += 1,
            RunOutcome::Wrong(w) => panic!("unexpected wrong outcome: {w}"),
            _ => acceptable += 1,
        }
    }
    println!(
        "\nruntime: {assert_failures}/200 random runs of q end in the assertion failure \
         ({acceptable} complete or block)"
    );
    assert!(
        assert_failures > 0,
        "the counterexample should be reachable"
    );

    // --- The paper's checker ----------------------------------------------
    let full_q_small = verdict(&client_scope, "q", false);
    let full_q_whole = verdict(&whole, "q", false);
    let full_setup = verdict(&stack_scope, "setup", false);
    println!("\nchecker with pivot uniqueness + owner exclusion:");
    println!("  q     in the client scope: {full_q_small}");
    println!("  q     in the whole program: {full_q_whole}   <- verdict stable");
    println!("  setup in the stack scope:  {full_setup}   <- the leak is caught");
    assert_eq!(full_q_small, "verified");
    assert_eq!(full_q_whole, "verified");
    assert_eq!(full_setup, "restriction violation");
}
