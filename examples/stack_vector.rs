//! The paper's running example: a stack implemented on top of a vector,
//! checked *modularly* — each implementation is verified in the smallest
//! self-contained scope that declares what it mentions, mirroring how a
//! compiler would check one module at a time.
//!
//! ```sh
//! cargo run --example stack_vector
//! ```

use oolong::corpus::paper::STACK_MODULE;
use oolong::datagroups::{CheckOptions, Checker};
use oolong::sema::{closure_for_impl, subset_program, Scope};
use oolong::syntax::{parse_program, Decl};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = STACK_MODULE.source;
    let program = parse_program(source).map_err(|e| e.render(source))?;

    // Whole-program check first.
    let full = Checker::new(&program, CheckOptions::default()).map_err(|e| e.render(source))?;
    let report = full.check_all();
    println!("whole-program scope:\n{report}\n");
    assert!(report.all_verified());

    // Modular check: every implementation in its least self-contained
    // scope. The vector procedures verify without the stack module in
    // sight, and vice versa — the paper's point about piecewise checking.
    for (i, decl) in program.decls.iter().enumerate() {
        let Decl::Impl(im) = decl else { continue };
        let keep = closure_for_impl(&program, i);
        let sub = subset_program(&program, &keep);
        let scope = Scope::analyze(&sub).expect("closure is self-contained");
        println!(
            "impl {}: checked against {} of {} declarations",
            im.name,
            sub.decls.len(),
            program.decls.len()
        );
        let checker = Checker::from_scope(scope, CheckOptions::default());
        let modular = checker.check_all();
        assert!(
            modular.all_verified(),
            "impl {} fails in its modular scope:\n{modular}",
            im.name
        );
    }
    println!("\nall implementations verify in their modular scopes");

    // Scope monotonicity in action: `push` keeps verifying as the scope
    // grows from its module to the whole program.
    let push_impl = program
        .decls
        .iter()
        .position(|d| matches!(d, Decl::Impl(i) if i.name.text == "push"))
        .expect("push impl exists");
    let small = subset_program(&program, &closure_for_impl(&program, push_impl));
    let small_report = Checker::new(&small, CheckOptions::default())?.check_all();
    let small_verdict = small_report.for_proc("push").expect("push checked");
    let full_verdict = report.for_proc("push").expect("push checked");
    println!(
        "push: {} in its module, {} in the whole program",
        small_verdict.verdict.label(),
        full_verdict.verdict.label()
    );
    assert!(small_verdict.verdict.is_verified() && full_verdict.verdict.is_verified());
    Ok(())
}
