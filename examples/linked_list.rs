//! Cyclic rep inclusions (Section 5, third example): a linked list where
//! `field next maps g into g` makes `t.g` include `t.next.g`.
//!
//! The paper reports that the hand proof of `updateAll` is "delightfully
//! simple", but Simplify's matching heuristics "show signs of fragility
//! when cyclic inclusions are involved, causing the prover to loop
//! irrevocably". Our prover reproduces both sides: the VC is discharged at
//! the default matching generation, and at a starved budget the same VC
//! surfaces as a measurable `Unknown` with deferred instantiations instead
//! of a hang.
//!
//! ```sh
//! cargo run --example linked_list
//! ```

use oolong::corpus::paper::EXAMPLE3;
use oolong::datagroups::{CheckOptions, Checker, Verdict};
use oolong::interp::{ExecConfig, Interp, Loc, RngOracle, Value};
use oolong::prover::Budget;
use oolong::sema::Scope;
use oolong::syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = EXAMPLE3.source;
    let program = parse_program(source).map_err(|e| e.render(source))?;

    // 1. The default budget verifies updateAll despite the cyclic
    //    inclusion.
    let report = Checker::new(&program, CheckOptions::default())
        .map_err(|e| e.render(source))?
        .check_all();
    println!("default budget:\n{report}\n");
    assert!(report.all_verified());

    // 2. A starved budget reproduces the divergence as Unknown-with-stats.
    let starved = CheckOptions {
        budget: Budget::tiny(),
        ..CheckOptions::default()
    };
    let report = Checker::new(&program, starved)?.check_all();
    let verdict = &report.for_proc("updateAll").expect("checked").verdict;
    println!("starved budget: {}", verdict.label());
    match verdict {
        Verdict::Unknown(stats) => {
            println!(
                "  the matching loop was cut off after {} instantiations ({} deferred)",
                stats.instances, stats.deferred_instances
            );
        }
        other => println!("  (prover got lucky: {})", other.label()),
    }

    // 3. Run updateAll over a concrete three-element list and watch the
    //    effect monitor accept every write — the whole list is one data
    //    group.
    let scope = Scope::analyze(&program)?;
    let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(1));
    let next = scope.attr("next").expect("declared");
    let value = scope.attr("value").expect("declared");
    let (a, b, c) = {
        let store = interp.store_mut();
        let a = store.alloc();
        let b = store.alloc();
        let c = store.alloc();
        store.write(Loc { obj: a, attr: next }, Value::Obj(b));
        store.write(Loc { obj: b, attr: next }, Value::Obj(c));
        store.write(
            Loc {
                obj: a,
                attr: value,
            },
            Value::Int(10),
        );
        store.write(
            Loc {
                obj: b,
                attr: value,
            },
            Value::Int(20),
        );
        store.write(
            Loc {
                obj: c,
                attr: value,
            },
            Value::Int(30),
        );
        (a, b, c)
    };
    let impl_id = scope.impls().next().expect("one impl").0;
    let outcome = interp.run_impl(impl_id, &[Value::Obj(a)]);
    println!("\ninterpreter outcome: {outcome:?}");
    assert!(outcome.is_acceptable());
    let store = interp.store();
    let values: Vec<Value> = [a, b, c]
        .iter()
        .map(|&o| {
            store.read(Loc {
                obj: o,
                attr: value,
            })
        })
        .collect();
    println!("list values after updateAll: {values:?}");
    assert_eq!(values, vec![Value::Int(11), Value::Int(21), Value::Int(31)]);
    Ok(())
}
