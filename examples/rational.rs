//! Information hiding with data groups (Section 2 of the paper): a
//! rational-number library whose public interface exposes only the
//! abstract group `value`, while `num`/`den` stay private.
//!
//! A *client* is checked against the interface alone — it never sees the
//! representation — yet its frame reasoning about `normalize` calls is
//! sound for every representation the library may choose.
//!
//! ```sh
//! cargo run --example rational
//! ```

use oolong::datagroups::{overhead, CheckOptions, Checker};
use oolong::syntax::parse_program;

/// The public interface: the abstract group and the operations' frames.
const INTERFACE: &str = "
group value
field tag
proc normalize(r) modifies r.value
proc set_tag(r) modifies r.tag
";

/// A client sees only the interface. Its assertion that `tag` survives
/// `normalize` is provable because `tag` is not included in `value`.
const CLIENT: &str = "
proc client(r) modifies r.value, r.tag
impl client(r) {
  assume r != null ;
  set_tag(r) ;
  var t in
    t := r.tag ;
    normalize(r) ;
    assert t = r.tag
  end
}
";

/// The private implementation reveals the representation of `value`.
const IMPLEMENTATION: &str = "
field num in value
field den in value
impl normalize(r) {
  assume r != null ;
  if r.den < 0 then
    r.num := 0 - r.num ;
    r.den := 0 - r.den
  end
}
// Note: `r.tag := t` for a formal `t` would violate pivot uniqueness
// (formal parameters may not be copied into fields — the paper's
// deliberately drastic restriction), so the setter writes a constant.
impl set_tag(r) { assume r != null ; r.tag := 7 }
";

fn check(label: &str, source: &str) -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(source).map_err(|e| e.render(source))?;
    let report = Checker::new(&program, CheckOptions::default())
        .map_err(|e| e.render(source))?
        .check_all();
    println!("{label}:\n{report}\n");
    assert!(report.all_verified(), "{label} should verify");
    let program = parse_program(source)?;
    println!("  {}\n", overhead(&program));
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The client is checked against the interface only: the representation
    // fields are not in scope.
    check("client against interface", &format!("{INTERFACE}{CLIENT}"))?;

    // The library's own implementations are checked in the private scope.
    check(
        "library implementation",
        &format!("{INTERFACE}{IMPLEMENTATION}"),
    )?;

    // And everything still verifies with all declarations visible — scope
    // monotonicity means publishing the representation cannot break the
    // client.
    check(
        "whole program",
        &format!("{INTERFACE}{CLIENT}{IMPLEMENTATION}"),
    )?;
    Ok(())
}
