//! Array dependencies (the paper's §6 future work, implemented): a table
//! whose `state` group includes an array of bucket objects — every slot of
//! the array, and the `bucketstate` of every element, is part of the
//! table's abstract state.
//!
//! ```sh
//! cargo run --example array_table
//! ```

use oolong::corpus::paper::ARRAY_TABLE;
use oolong::datagroups::{CheckOptions, Checker};
use oolong::interp::{ExecConfig, FirstOracle, Interp, Loc, Value};
use oolong::sema::Scope;
use oolong::syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = ARRAY_TABLE.source;
    let program = parse_program(source).map_err(|e| e.render(source))?;

    // 1. Static checking: every implementation verifies — including
    //    `observer`, whose assertion about a foreign bucket `x` is
    //    protected by the elementwise owner-exclusion clauses.
    let report = Checker::new(&program, CheckOptions::default())
        .map_err(|e| e.render(source))?
        .check_all();
    println!("static checker:\n{report}\n");

    // 2. Run the pipeline under the effect monitor: installing buckets and
    //    bumping one through the elem-pivot closure is licensed.
    let scope = Scope::analyze(&program)?;
    let mut interp = Interp::new(&scope, ExecConfig::default(), FirstOracle);
    let t = interp.store_mut().alloc();
    let tinit = impl_of(&scope, "tinit");
    assert!(interp.run_impl(tinit, &[Value::Obj(t)]).is_acceptable());
    let touch = impl_of(&scope, "touch");
    assert!(interp
        .run_impl(touch, &[Value::Obj(t), Value::Int(0)])
        .is_acceptable());

    let buckets = scope.attr("buckets").unwrap();
    let count = scope.attr("count").unwrap();
    let arr = interp
        .store()
        .read(Loc {
            obj: t,
            attr: buckets,
        })
        .as_obj()
        .expect("installed");
    let b0 = interp
        .store()
        .read_slot(arr, 0)
        .as_obj()
        .expect("bucket present");
    println!(
        "after tinit + touch: bucket 0 count = {}",
        interp.store().read(Loc {
            obj: b0,
            attr: count
        })
    );

    // 3. A slot write without the elem license is caught by the monitor.
    let sneak = parse_program(
        "group state
         field buckets in state maps elem state into state
         proc sneak(t)
         impl sneak(t) { assume t != null && t.buckets != null ; t.buckets[0] := null }",
    )?;
    let sneak_scope = Scope::analyze(&sneak)?;
    let mut interp = Interp::new(&sneak_scope, ExecConfig::default(), FirstOracle);
    let t = interp.store_mut().alloc();
    let arr = interp.store_mut().alloc();
    let buckets = sneak_scope.attr("buckets").unwrap();
    interp.store_mut().write(
        Loc {
            obj: t,
            attr: buckets,
        },
        Value::Obj(arr),
    );
    let outcome = interp.run_impl(impl_of(&sneak_scope, "sneak"), &[Value::Obj(t)]);
    println!("\nunlicensed slot write: {outcome:?}");
    assert!(!outcome.is_acceptable());
    Ok(())
}

fn impl_of(scope: &Scope, name: &str) -> oolong::sema::ImplId {
    scope
        .impls()
        .find(|(_, i)| scope.proc_info(i.proc).name == name)
        .map(|(id, _)| id)
        .unwrap_or_else(|| panic!("impl {name} exists"))
}
