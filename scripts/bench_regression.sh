#!/usr/bin/env bash
# Cold-batch regression gate (E19/E20, CI job `bench-regression`).
#
# Measures the median cold paper-corpus batch through the engine (the
# `e19_engine_cold` configuration, as the `cold_probe` binary) and fails
# when it exceeds the recorded BENCH_e19 engine_cold median (286.4 ms) by
# more than 15%. Absolute wall-clock on an unknown runner proves nothing
# by itself, so a breach is confirmed with the machine-drift guard from
# E19's methodology: the pinned baseline commit is built in a git worktree
# and the two probes run interleaved round-for-round on the same machine;
# only a current tree slower than 1.15x the interleaved baseline fails.
set -euo pipefail
cd "$(dirname "$0")/.."

# BENCH_e19 engine_cold median 286.4 ms x 1.15 (override for testing).
THRESHOLD_MS=${BENCH_THRESHOLD_MS:-329.0}
BASELINE_COMMIT=9de2311     # PR-6: the last tree before the E19 regression
DRIFT_FACTOR=1.15
ROUNDS=3
SAMPLES=5

median_of() { # sorted median of "$@" (floats)
    python3 -c 'import sys; xs = sorted(float(a) for a in sys.argv[1:]); print(f"{xs[len(xs)//2]:.1f}")' "$@"
}

echo "== cold-batch probe (current tree) =="
cargo build --release -q -p oolong-bench --bin cold_probe
./target/release/cold_probe --samples 7 | tee cold_probe.json
median=$(python3 -c 'import json,sys; print(json.load(sys.stdin)["median_ms"])' < cold_probe.json)
echo "current median: ${median} ms (threshold ${THRESHOLD_MS} ms)"

# Second probe: the generated invariant + read-effect corpus, so the
# invariant-preserved and read-license obligation kinds have their own
# regression gate. The pinned baseline commit predates the populations,
# so no worktree re-measurement is possible; instead the gate is the
# ratio against the paper-corpus probe measured moments ago on the same
# machine (recorded 0.09, i.e. 16 ms vs 176 ms — threshold 0.35 leaves
# headroom for runner noise while still catching a blown-up axiom
# schedule for the new kinds).
INVARIANT_RATIO=${BENCH_INVARIANT_RATIO:-0.35}
echo "== invariant-corpus probe (current tree) =="
./target/release/cold_probe --invariant-corpus --samples 7 | tee invariant_probe.json
inv_median=$(python3 -c 'import json,sys; print(json.load(sys.stdin)["median_ms"])' < invariant_probe.json)
echo "invariant median: ${inv_median} ms (gate: <= ${INVARIANT_RATIO}x paper median ${median} ms)"
if ! python3 -c "import sys; sys.exit(0 if ${inv_median} <= ${median} * ${INVARIANT_RATIO} else 1)"; then
    echo "FAIL: the invariant/read-effect cold batch regressed past ${INVARIANT_RATIO}x the paper corpus"
    exit 1
fi
echo "invariant-corpus probe PASS"

if python3 -c "import sys; sys.exit(0 if ${median} <= ${THRESHOLD_MS} else 1)"; then
    echo "PASS: within the absolute threshold"
    exit 0
fi

echo "== threshold exceeded: interleaved machine-drift guard =="
worktree=target/bench-baseline
git worktree add --force "$worktree" "$BASELINE_COMMIT"
trap 'git worktree remove --force "$worktree" >/dev/null 2>&1 || true' EXIT
mkdir -p "$worktree/crates/bench/src/bin"
cp scripts/baseline_probe.rs "$worktree/crates/bench/src/bin/cold_probe.rs"
(cd "$worktree" && cargo build --release -q -p oolong-bench --bin cold_probe)

cur_medians=()
base_medians=()
for round in $(seq "$ROUNDS"); do
    base=$("$worktree/target/release/cold_probe" "$SAMPLES")
    cur=$(./target/release/cold_probe --samples "$SAMPLES" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["median_ms"])')
    echo "round ${round}: baseline ${base} ms, current ${cur} ms"
    base_medians+=("$base")
    cur_medians+=("$cur")
done
base_median=$(median_of "${base_medians[@]}")
cur_median=$(median_of "${cur_medians[@]}")
echo "interleaved medians: baseline ${base_median} ms, current ${cur_median} ms"

if python3 -c "import sys; sys.exit(0 if ${cur_median} <= ${base_median} * ${DRIFT_FACTOR} else 1)"; then
    echo "PASS: machine drift — current tree is within ${DRIFT_FACTOR}x of the interleaved baseline"
    exit 0
fi
echo "FAIL: cold batch regressed past ${DRIFT_FACTOR}x of the interleaved PR-6 baseline"
exit 1
