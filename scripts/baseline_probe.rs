//! Baseline-compatible cold-batch probe, injected into a git worktree of
//! the pinned baseline commit by `scripts/bench_regression.sh`.
//!
//! It measures the same thing as `crates/bench/src/bin/cold_probe.rs` — a
//! fresh engine checking the full paper corpus, empty caches — but uses
//! only `CheckOptions::default()` so it compiles against trees that
//! predate the pattern-policy options (the baseline commit is PR-6,
//! 9de2311). Keep this file free of any `CheckOptions` field names.

use std::time::Instant;

use oolong_corpus::paper;
use oolong_engine::{BatchUnit, Engine, EngineOptions};

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("sample count"))
        .unwrap_or(5);
    let units: Vec<BatchUnit> = paper::all()
        .iter()
        .map(|p| BatchUnit {
            name: p.name.to_string(),
            source: p.source.to_string(),
        })
        .collect();
    let run = || {
        let engine = Engine::new(EngineOptions::default()).expect("in-memory engine");
        engine.check_batch(&units)
    };
    let _ = run(); // warmup
    let mut times_ms: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let _ = run();
        times_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    println!("{:.1}", times_ms[times_ms.len() / 2]);
}
